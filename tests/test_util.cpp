// Unit tests: util (rng, strings, table, csv).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include "util/csv.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/str.h"
#include "util/table.h"

namespace {

using namespace cd;

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.u64(), b.u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.u64() == b.u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformZeroThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(0), InvariantError);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.real();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.3);
}

TEST(Rng, SplitIndependence) {
  Rng root(99);
  Rng a = root.split("alpha");
  Rng b = root.split("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.u64() == b.u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(23);
  const auto idx = rng.sample_indices(100, 17);
  EXPECT_EQ(idx.size(), 17u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 17u);
  for (std::size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesClampsToN) {
  Rng rng(25);
  EXPECT_EQ(rng.sample_indices(5, 10).size(), 5u);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(empty), InvariantError);
}

// --- str ----------------------------------------------------------------------

TEST(Str, SplitBasic) {
  EXPECT_EQ(split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Str, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a..b.", '.'),
            (std::vector<std::string>{"a", "", "b", ""}));
  EXPECT_EQ(split("", '.'), (std::vector<std::string>{""}));
}

TEST(Str, JoinInvertsSplit) {
  const std::string s = "x:y::z";
  EXPECT_EQ(join(split(s, ':'), ":"), s);
}

TEST(Str, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC-9"), "abc-9");
  EXPECT_TRUE(iequals("DNS-Lab", "dns-lab"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "abcd"));
}

TEST(Str, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12a"));
  EXPECT_FALSE(parse_u64("-1"));
}

TEST(Str, ParseHexU64) {
  EXPECT_EQ(parse_hex_u64("ff"), 0xFFu);
  EXPECT_EQ(parse_hex_u64("DeadBeef"), 0xDEADBEEFu);
  EXPECT_EQ(parse_hex_u64("ffffffffffffffff"), UINT64_MAX);
  EXPECT_FALSE(parse_hex_u64("10000000000000000"));  // 17 digits
  EXPECT_FALSE(parse_hex_u64("xyz"));
  EXPECT_FALSE(parse_hex_u64(""));
}

TEST(Str, ToHexRoundTrip) {
  EXPECT_EQ(to_hex(0xC0A80001u, 8), "c0a80001");
  EXPECT_EQ(parse_hex_u64(to_hex(123456789, 16)), 123456789u);
}

TEST(Str, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
}

TEST(Str, Percent) {
  EXPECT_EQ(percent(1, 2), "50.0%");
  EXPECT_EQ(percent(1, 3, 2), "33.33%");
  EXPECT_EQ(percent(1, 0), "n/a");
}

// --- TextTable ------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "count"});
  t.set_align(1, Align::kRight);
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name      | count"), std::string::npos);
  EXPECT_NE(out.find("a         |     1"), std::string::npos);
  EXPECT_NE(out.find("long-name | 12345"), std::string::npos);
}

TEST(TextTable, MissingAndExtraCells) {
  TextTable t({"a", "b"});
  t.add_row({"only"});
  t.add_row({"x", "y", "dropped"});
  const std::string out = t.to_string();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

// --- CsvWriter --------------------------------------------------------------------

TEST(Csv, EscapeRules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesFile) {
  const std::string path = "test_csv_out.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"h1", "h,2"});
    csv.write_row({"1", "2"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h1,\"h,2\"");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), Error);
}

}  // namespace
