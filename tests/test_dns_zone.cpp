// Unit tests: zone lookup semantics (RFC 1034): answers, negatives,
// delegations with glue, wildcards, empty non-terminals.
#include <gtest/gtest.h>

#include "dns/zone.h"
#include "util/error.h"

namespace {

using namespace cd;
using dns::DnsName;
using dns::LookupKind;
using dns::RrType;
using dns::Zone;
using net::IpAddr;

dns::SoaRdata test_soa() {
  dns::SoaRdata soa;
  soa.mname = DnsName::must_parse("ns1.example.org");
  soa.rname = DnsName::must_parse("admin.example.org");
  soa.minimum = 300;
  return soa;
}

Zone make_zone() {
  Zone zone(DnsName::must_parse("example.org"), test_soa());
  zone.add(dns::make_a(DnsName::must_parse("www.example.org"),
                       IpAddr::must_parse("192.0.2.1")));
  zone.add(dns::make_a(DnsName::must_parse("www.example.org"),
                       IpAddr::must_parse("192.0.2.2")));
  zone.add(dns::make_aaaa(DnsName::must_parse("www.example.org"),
                          IpAddr::must_parse("2001:db8::1")));
  zone.add(dns::make_cname(DnsName::must_parse("alias.example.org"),
                           DnsName::must_parse("www.example.org")));
  // Delegation with in-zone glue.
  zone.add(dns::make_ns(DnsName::must_parse("sub.example.org"),
                        DnsName::must_parse("ns.sub-host.example.org")));
  zone.add(dns::make_a(DnsName::must_parse("ns.sub-host.example.org"),
                       IpAddr::must_parse("192.0.2.53")));
  // A deep record creating empty non-terminals.
  zone.add(dns::make_txt(DnsName::must_parse("deep.empty.nodes.example.org"),
                         "here"));
  // Wildcard under services.
  zone.add(dns::make_a(DnsName::must_parse("*.services.example.org"),
                       IpAddr::must_parse("192.0.2.99")));
  return zone;
}

TEST(Zone, ExactAnswerReturnsFullRrset) {
  const Zone zone = make_zone();
  const auto result =
      zone.lookup(DnsName::must_parse("www.example.org"), RrType::kA);
  EXPECT_EQ(result.kind, LookupKind::kAnswer);
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_FALSE(result.wildcard);
}

TEST(Zone, AnswerIsTypeSpecific) {
  const Zone zone = make_zone();
  const auto result =
      zone.lookup(DnsName::must_parse("www.example.org"), RrType::kAaaa);
  EXPECT_EQ(result.kind, LookupKind::kAnswer);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].type, RrType::kAaaa);
}

TEST(Zone, CnameReturnedForOtherTypes) {
  const Zone zone = make_zone();
  const auto result =
      zone.lookup(DnsName::must_parse("alias.example.org"), RrType::kA);
  EXPECT_EQ(result.kind, LookupKind::kAnswer);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].type, RrType::kCname);
}

TEST(Zone, NoDataForMissingType) {
  const Zone zone = make_zone();
  const auto result =
      zone.lookup(DnsName::must_parse("www.example.org"), RrType::kTxt);
  EXPECT_EQ(result.kind, LookupKind::kNoData);
  ASSERT_TRUE(result.soa.has_value());
  EXPECT_EQ(result.soa->type, RrType::kSoa);
}

TEST(Zone, NxDomainWithSoa) {
  const Zone zone = make_zone();
  const auto result =
      zone.lookup(DnsName::must_parse("missing.example.org"), RrType::kA);
  EXPECT_EQ(result.kind, LookupKind::kNxDomain);
  EXPECT_TRUE(result.soa.has_value());
}

TEST(Zone, EmptyNonTerminalIsNoDataNotNxDomain) {
  const Zone zone = make_zone();
  for (const char* name : {"empty.nodes.example.org", "nodes.example.org"}) {
    const auto result = zone.lookup(DnsName::must_parse(name), RrType::kA);
    EXPECT_EQ(result.kind, LookupKind::kNoData) << name;
  }
}

TEST(Zone, DelegationWithGlue) {
  const Zone zone = make_zone();
  const auto result =
      zone.lookup(DnsName::must_parse("host.sub.example.org"), RrType::kA);
  EXPECT_EQ(result.kind, LookupKind::kDelegation);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].type, RrType::kNs);
  ASSERT_EQ(result.glue.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(result.glue[0].rdata).addr,
            IpAddr::must_parse("192.0.2.53"));
}

TEST(Zone, DelegationAppliesAtAndBelowCut) {
  const Zone zone = make_zone();
  EXPECT_EQ(zone.lookup(DnsName::must_parse("sub.example.org"), RrType::kA)
                .kind,
            LookupKind::kDelegation);
  EXPECT_EQ(zone.lookup(DnsName::must_parse("a.b.c.sub.example.org"),
                        RrType::kTxt)
                .kind,
            LookupKind::kDelegation);
}

TEST(Zone, ApexNsIsAnswerNotDelegation) {
  Zone zone(DnsName::must_parse("example.org"), test_soa());
  zone.add(dns::make_ns(DnsName::must_parse("example.org"),
                        DnsName::must_parse("ns1.example.org")));
  const auto result =
      zone.lookup(DnsName::must_parse("example.org"), RrType::kNs);
  EXPECT_EQ(result.kind, LookupKind::kAnswer);
}

TEST(Zone, WildcardSynthesis) {
  const Zone zone = make_zone();
  const auto result = zone.lookup(
      DnsName::must_parse("anything.services.example.org"), RrType::kA);
  EXPECT_EQ(result.kind, LookupKind::kAnswer);
  EXPECT_TRUE(result.wildcard);
  ASSERT_EQ(result.records.size(), 1u);
  // Owner rewritten to the query name.
  EXPECT_EQ(result.records[0].name,
            DnsName::must_parse("anything.services.example.org"));
}

TEST(Zone, WildcardMatchesMultipleLabelsDeep) {
  const Zone zone = make_zone();
  const auto result = zone.lookup(
      DnsName::must_parse("a.b.c.services.example.org"), RrType::kA);
  EXPECT_EQ(result.kind, LookupKind::kAnswer);
  EXPECT_TRUE(result.wildcard);
}

TEST(Zone, WildcardNoDataForOtherTypes) {
  const Zone zone = make_zone();
  const auto result = zone.lookup(
      DnsName::must_parse("x.services.example.org"), RrType::kTxt);
  EXPECT_EQ(result.kind, LookupKind::kNoData);
  EXPECT_TRUE(result.wildcard);
}

TEST(Zone, ExistingNameShadowsWildcard) {
  Zone zone(DnsName::must_parse("example.org"), test_soa());
  zone.add(dns::make_a(DnsName::must_parse("*.example.org"),
                       IpAddr::must_parse("192.0.2.99")));
  zone.add(dns::make_txt(DnsName::must_parse("real.example.org"), "t"));
  // real.example.org exists (with TXT only) -> NoData, not wildcard A.
  const auto result =
      zone.lookup(DnsName::must_parse("real.example.org"), RrType::kA);
  EXPECT_EQ(result.kind, LookupKind::kNoData);
  EXPECT_FALSE(result.wildcard);
}

TEST(Zone, NotInZone) {
  const Zone zone = make_zone();
  EXPECT_EQ(zone.lookup(DnsName::must_parse("example.com"), RrType::kA).kind,
            LookupKind::kNotInZone);
  EXPECT_EQ(zone.lookup(DnsName::must_parse("org"), RrType::kA).kind,
            LookupKind::kNotInZone);
}

TEST(Zone, AddOutOfZoneThrows) {
  Zone zone(DnsName::must_parse("example.org"), test_soa());
  EXPECT_THROW(zone.add(dns::make_a(DnsName::must_parse("other.com"),
                                    IpAddr::must_parse("192.0.2.1"))),
               InvariantError);
}

TEST(Zone, RootZoneContainsEverything) {
  Zone root(DnsName(), test_soa());
  root.add(dns::make_ns(DnsName::must_parse("org"),
                        DnsName::must_parse("ns.tld-host.net")));
  root.add(dns::make_a(DnsName::must_parse("ns.tld-host.net"),
                       IpAddr::must_parse("192.0.2.10")));
  const auto result =
      root.lookup(DnsName::must_parse("deep.name.under.org"), RrType::kA);
  EXPECT_EQ(result.kind, LookupKind::kDelegation);
  EXPECT_EQ(result.glue.size(), 1u);
}

TEST(Zone, RecordCount) {
  EXPECT_EQ(make_zone().record_count(), 8u);
}

TEST(Zone, SoaRr) {
  const Zone zone = make_zone();
  const auto rr = zone.soa_rr();
  EXPECT_EQ(rr.type, RrType::kSoa);
  EXPECT_EQ(rr.name, zone.origin());
  EXPECT_EQ(rr.ttl, 300u);  // negative TTL = SOA minimum
}

}  // namespace
