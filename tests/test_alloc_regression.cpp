// Allocation-regression guard (ctest label: alloc): the zero-alloc claims of
// the event core and the delivery path, asserted with a real operator-new
// counter so they cannot silently regress. After a warmup that fills the
// pools (event nodes, wire buffers, per-tick delivery slots), a steady-state
// send->deliver cycle must perform ZERO heap allocations — same-tick bursts
// and jittered singleton arrivals alike — and so must a steady-state
// schedule/run cycle on the bare loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/network.h"
#include "sim/os_model.h"
#include "sim/topology.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace cd;

constexpr int kBurst = 256;

/// Two-AS world with one bound UDP host (the bench fixture, verbatim).
struct DeliveryFixture {
  sim::EventLoop loop;
  sim::Topology topo;
  sim::Network network{topo, loop, Rng(7)};
  std::optional<sim::Host> host;
  std::uint64_t received = 0;

  DeliveryFixture() {
    topo.add_as(1);
    topo.add_as(2);
    topo.announce(1, net::Prefix::must_parse("21.0.0.0/16"));
    topo.announce(2, net::Prefix::must_parse("22.0.0.0/16"));
    host.emplace(network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
                 std::vector<net::IpAddr>{net::IpAddr::must_parse("22.0.0.1")},
                 Rng(1));
    host->bind_udp(53, [this](const net::Packet&) { ++received; });
  }
};

/// Sends one burst (pool-recycled payloads), drains it, and returns the heap
/// allocations the whole cycle performed. `vary_payload` spreads arrivals
/// over distinct ticks (content-hashed latency); identical payloads land on
/// one tick (the batched path's coalescing case).
std::uint64_t burst_allocs(DeliveryFixture& f, bool vary_payload) {
  const auto src = net::IpAddr::must_parse("21.0.0.5");
  const auto dst = net::IpAddr::must_parse("22.0.0.1");
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < kBurst; ++i) {
    const std::uint8_t lo = vary_payload ? static_cast<std::uint8_t>(i) : 0;
    const std::uint8_t hi = vary_payload ? static_cast<std::uint8_t>(i >> 8) : 0;
    auto payload = cd::BufferPool::acquire();
    payload.assign({lo, hi, 3, 4});
    f.network.send(net::make_udp(src, 1000, dst, 53, std::move(payload)), 1);
  }
  f.loop.run();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(AllocRegression, SameTickDeliveryIsZeroAllocSteadyState) {
  DeliveryFixture f;
  for (int warm = 0; warm < 8; ++warm) burst_allocs(f, false);
  std::uint64_t allocs = 0;
  for (int round = 0; round < 4; ++round) allocs += burst_allocs(f, false);
  EXPECT_EQ(allocs, 0u) << "per-packet: "
                        << static_cast<double>(allocs) / (4.0 * kBurst);
  EXPECT_EQ(f.received, 12u * kBurst);
}

TEST(AllocRegression, JitteredDeliveryIsZeroAllocSteadyState) {
  DeliveryFixture f;
  for (int warm = 0; warm < 8; ++warm) burst_allocs(f, true);
  std::uint64_t allocs = 0;
  for (int round = 0; round < 4; ++round) allocs += burst_allocs(f, true);
  EXPECT_EQ(allocs, 0u) << "per-packet: "
                        << static_cast<double>(allocs) / (4.0 * kBurst);
  EXPECT_EQ(f.received, 12u * kBurst);
}

TEST(AllocRegression, UnbatchedDeliveryStaysAtBaseline) {
  // The per-packet differential baseline keeps its documented cost (the
  // whole-Packet closure takes SmallFn's heap fallback) but must not creep.
  DeliveryFixture f;
  f.network.set_batched_delivery(false);
  for (int warm = 0; warm < 8; ++warm) burst_allocs(f, false);
  std::uint64_t allocs = 0;
  for (int round = 0; round < 4; ++round) allocs += burst_allocs(f, false);
  EXPECT_LE(allocs, 4u * kBurst * 4u)
      << "per-packet: " << static_cast<double>(allocs) / (4.0 * kBurst);
}

TEST(AllocRegression, EventLoopScheduleRunIsZeroAllocSteadyState) {
  sim::EventLoop loop;
  Rng rng(42);
  std::vector<sim::SimTime> delays;
  for (int i = 0; i < 4096; ++i) {
    delays.push_back(static_cast<sim::SimTime>(rng.u64() % 100'000));
  }
  std::uint64_t sum = 0;
  auto cycle = [&] {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (const sim::SimTime d : delays) {
      loop.schedule_in(d, [&sum] { ++sum; });
    }
    loop.run();
    return g_allocs.load(std::memory_order_relaxed) - before;
  };
  for (int warm = 0; warm < 4; ++warm) cycle();
  std::uint64_t allocs = 0;
  for (int round = 0; round < 4; ++round) allocs += cycle();
  EXPECT_EQ(allocs, 0u) << "per-event: "
                        << static_cast<double>(allocs) / (4.0 * 4096.0);
  EXPECT_EQ(sum, 8u * 4096u);
}

TEST(AllocRegression, SmallFnStoresHotClosuresInline) {
  // The closures the simulator schedules in steady state must fit SmallFn's
  // inline buffer; a pointer-pair capture stays inline, a >48-byte capture
  // documents the heap fallback.
  struct TwoPtrs {
    void* a;
    void* b;
    void operator()() const {}
  };
  static_assert(sim::SmallFn::fits_inline<TwoPtrs>());
  sim::SmallFn small(TwoPtrs{nullptr, nullptr});
  EXPECT_TRUE(small.is_inline());

  struct Fat {
    unsigned char blob[64];
    void operator()() const {}
  };
  static_assert(!sim::SmallFn::fits_inline<Fat>());
  sim::SmallFn fat(Fat{});
  EXPECT_FALSE(fat.is_inline());
}

}  // namespace
