// The bump-pointer arena behind the campaign plan's SoA columns: alignment,
// zero-initialization, span stability across block growth, and the reset()
// scratch-reuse contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/arena.h"

namespace {

TEST(Arena, AlignsEveryAllocation) {
  cd::Arena arena(/*block_bytes=*/256);
  // Interleave oddly-sized byte runs with wider types so alignment is only
  // ever satisfied by the arena's own rounding, not by luck.
  for (int i = 0; i < 50; ++i) {
    const auto bytes = arena.alloc_array<std::uint8_t>(1 + (i % 7));
    ASSERT_EQ(bytes.size(), 1u + (i % 7));
    const auto words = arena.alloc_array<std::uint64_t>(3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words.data()) %
                  alignof(std::uint64_t),
              0u);
    const auto doubles = arena.alloc_array<double>(2);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) %
                  alignof(double),
              0u);
  }
}

TEST(Arena, ValueInitializesAndSpansStayStable) {
  cd::Arena arena(/*block_bytes=*/128);  // tiny blocks force frequent growth
  std::vector<std::span<std::uint32_t>> spans;
  for (std::uint32_t i = 0; i < 40; ++i) {
    auto s = arena.alloc_array<std::uint32_t>(10);
    for (const std::uint32_t v : s) EXPECT_EQ(v, 0u);  // zeroed on arrival
    std::iota(s.begin(), s.end(), i * 100);
    spans.push_back(s);
  }
  // Later allocations (and the block growth they caused) must not move or
  // clobber earlier columns.
  for (std::uint32_t i = 0; i < 40; ++i) {
    for (std::uint32_t j = 0; j < 10; ++j) {
      EXPECT_EQ(spans[i][j], i * 100 + j) << "span " << i << " slot " << j;
    }
  }
}

TEST(Arena, OversizedRequestGetsItsOwnBlock) {
  cd::Arena arena(/*block_bytes=*/64);
  auto big = arena.alloc_array<std::uint64_t>(100);  // 800B > 64B blocks
  ASSERT_EQ(big.size(), 100u);
  big[0] = 1;
  big[99] = 2;
  // And the arena keeps allocating normally afterwards.
  auto next = arena.alloc_array<std::uint64_t>(4);
  next[0] = 3;
  EXPECT_EQ(big[0], 1u);
  EXPECT_EQ(big[99], 2u);
}

TEST(Arena, TracksBytesAllocated) {
  cd::Arena arena;
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  (void)arena.alloc_array<std::uint64_t>(8);
  EXPECT_EQ(arena.bytes_allocated(), 64u);
  (void)arena.alloc_array<std::uint8_t>(3);
  EXPECT_EQ(arena.bytes_allocated(), 67u);
  (void)arena.alloc_array<std::uint32_t>(0);  // empty: no bytes, empty span
  EXPECT_EQ(arena.bytes_allocated(), 67u);
}

TEST(Arena, ResetReturnsToFreshStateAndIsReusable) {
  cd::Arena arena(/*block_bytes=*/128);
  for (int i = 0; i < 20; ++i) (void)arena.alloc_array<std::uint64_t>(16);
  ASSERT_GT(arena.bytes_allocated(), 0u);

  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);

  // A fresh pass over the same arena behaves like a new arena: zeroed
  // memory, correct accounting, stable spans.
  auto a = arena.alloc_array<std::uint64_t>(16);
  for (const std::uint64_t v : a) EXPECT_EQ(v, 0u);
  auto b = arena.alloc_array<std::uint64_t>(16);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 100);
  EXPECT_EQ(arena.bytes_allocated(), 2u * 16 * sizeof(std::uint64_t));
  EXPECT_EQ(a[15], 15u);
  EXPECT_EQ(b[0], 100u);
}

}  // namespace
