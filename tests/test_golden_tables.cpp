// Golden-output regression: a fixed-seed scaled-down standard experiment
// must keep producing exactly the Table 3 category rows it produces today,
// and the OS stacks must keep the Table 6 acceptance matrix.
//
// These literals pin end-to-end pipeline behaviour (world gen, probing,
// filtering, collection, classification), so an intentional behaviour
// change legitimately moves them: rerun with CD_GOLDEN_PRINT=1 to emit the
// new literals and paste them in — after checking the diff makes sense.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/classify.h"
#include "core/experiment.h"
#include "ditl/world.h"
#include "net/packet.h"
#include "scanner/source_select.h"
#include "sim/host.h"
#include "sim/os_model.h"

namespace {

constexpr double kScale = 0.05;  // 600 * 0.05 = 30 ASes
constexpr std::uint64_t kSeed = 42;

bool golden_print() { return std::getenv("CD_GOLDEN_PRINT") != nullptr; }

struct CategoryGolden {
  const char* category;
  // incl v4 {addrs, asns}, incl v6, excl v4, excl v6
  std::uint64_t cells[8];
};

// --- golden values (CD_GOLDEN_PRINT=1 regenerates) --------------------------

constexpr std::uint64_t kGoldenQueried[4] = {2070, 30, 246, 9};  // v4 a/as, v6 a/as
constexpr std::uint64_t kGoldenReachable[4] = {96, 15, 21, 4};   // v4 a/as, v6 a/as

constexpr CategoryGolden kGoldenCategories[cd::scanner::kSourceCategoryCount] =
    {
        {"Other Prefix", {82, 13, 19, 4, 27, 5, 12, 3}},
        {"Same Prefix", {65, 9, 9, 1, 8, 1, 0, 0}},
        {"Private", {7, 2, 0, 0, 4, 1, 0, 0}},
        {"Dst-as-Src", {13, 6, 9, 1, 0, 0, 0, 0}},
        {"Loopback", {0, 0, 0, 0, 0, 0, 0, 0}},
};

struct AcceptanceGolden {
  const char* name;
  // "DS v4, LB v4, DS v6, LB v6" as '1'/'0' characters.
  const char* accepted;
};

constexpr AcceptanceGolden kGoldenAcceptance[] = {
    {"Ubuntu 10.04", "0011"},
    {"Ubuntu 12.04", "0011"},
    {"Ubuntu 14.04", "0011"},
    {"Ubuntu 16.04", "0010"},
    {"Ubuntu 18.04", "0010"},
    {"Ubuntu 19.04", "0010"},
    {"FreeBSD 11.3", "1010"},
    {"FreeBSD 12.0", "1010"},
    {"FreeBSD 12.1", "1010"},
    {"Windows Server 2003", "1110"},
    {"Windows Server 2003 R2", "1110"},
    {"Windows Server 2008", "1010"},
    {"Windows Server 2008 R2", "1010"},
    {"Windows Server 2012", "1010"},
    {"Windows Server 2012 R2", "1010"},
    {"Windows Server 2016", "1010"},
    {"Windows Server 2019", "1010"},
};

// ----------------------------------------------------------------------------

TEST(GoldenTables, Table3CategoryRows) {
  cd::ditl::WorldSpec spec = cd::ditl::bench_world_spec();
  spec.n_asns = static_cast<int>(spec.n_asns * kScale);
  spec.seed = kSeed;
  auto world = cd::ditl::generate_world(spec);

  cd::core::ExperimentConfig config;
  config.analyst = cd::scanner::AnalystConfig{};
  cd::core::Experiment experiment(*world, config);
  const auto& results = experiment.run();

  const auto table =
      cd::analysis::build_category_table(results.records, world->targets);

  if (golden_print()) {
    std::printf("constexpr std::uint64_t kGoldenQueried[4] = {%llu, %llu, "
                "%llu, %llu};\n",
                (unsigned long long)table.queried[0].addrs,
                (unsigned long long)table.queried[0].asns,
                (unsigned long long)table.queried[1].addrs,
                (unsigned long long)table.queried[1].asns);
    std::printf("constexpr std::uint64_t kGoldenReachable[4] = {%llu, %llu, "
                "%llu, %llu};\n",
                (unsigned long long)table.reachable[0].addrs,
                (unsigned long long)table.reachable[0].asns,
                (unsigned long long)table.reachable[1].addrs,
                (unsigned long long)table.reachable[1].asns);
    for (int c = 0; c < cd::scanner::kSourceCategoryCount; ++c) {
      const auto cat = static_cast<cd::scanner::SourceCategory>(c);
      std::printf("        {\"%s\", {%llu, %llu, %llu, %llu, %llu, %llu, "
                  "%llu, %llu}},\n",
                  cd::scanner::source_category_name(cat).c_str(),
                  (unsigned long long)table.inclusive[c][0].addrs,
                  (unsigned long long)table.inclusive[c][0].asns,
                  (unsigned long long)table.inclusive[c][1].addrs,
                  (unsigned long long)table.inclusive[c][1].asns,
                  (unsigned long long)table.exclusive[c][0].addrs,
                  (unsigned long long)table.exclusive[c][0].asns,
                  (unsigned long long)table.exclusive[c][1].addrs,
                  (unsigned long long)table.exclusive[c][1].asns);
    }
    GTEST_SKIP() << "golden print mode";
  }

  EXPECT_EQ(table.queried[0].addrs, kGoldenQueried[0]);
  EXPECT_EQ(table.queried[0].asns, kGoldenQueried[1]);
  EXPECT_EQ(table.queried[1].addrs, kGoldenQueried[2]);
  EXPECT_EQ(table.queried[1].asns, kGoldenQueried[3]);
  EXPECT_EQ(table.reachable[0].addrs, kGoldenReachable[0]);
  EXPECT_EQ(table.reachable[0].asns, kGoldenReachable[1]);
  EXPECT_EQ(table.reachable[1].addrs, kGoldenReachable[2]);
  EXPECT_EQ(table.reachable[1].asns, kGoldenReachable[3]);

  for (int c = 0; c < cd::scanner::kSourceCategoryCount; ++c) {
    const auto cat = static_cast<cd::scanner::SourceCategory>(c);
    SCOPED_TRACE(cd::scanner::source_category_name(cat));
    EXPECT_EQ(cd::scanner::source_category_name(cat),
              kGoldenCategories[c].category);
    const auto& g = kGoldenCategories[c].cells;
    EXPECT_EQ(table.inclusive[c][0].addrs, g[0]);
    EXPECT_EQ(table.inclusive[c][0].asns, g[1]);
    EXPECT_EQ(table.inclusive[c][1].addrs, g[2]);
    EXPECT_EQ(table.inclusive[c][1].asns, g[3]);
    EXPECT_EQ(table.exclusive[c][0].addrs, g[4]);
    EXPECT_EQ(table.exclusive[c][0].asns, g[5]);
    EXPECT_EQ(table.exclusive[c][1].addrs, g[6]);
    EXPECT_EQ(table.exclusive[c][1].asns, g[7]);
  }
}

TEST(GoldenTables, Table6OsAcceptanceRows) {
  // Same probing as bench/table6_os_acceptance.cpp: four spoofed packets at
  // each stack with no border filtering, so delivery isolates the kernel
  // acceptance rule.
  std::vector<std::pair<std::string, std::string>> rows;
  for (const cd::sim::OsProfile& os : cd::sim::all_os_profiles()) {
    if (os.id == cd::sim::OsId::kBaiduLike ||
        os.id == cd::sim::OsId::kEmbeddedCpe ||
        os.id == cd::sim::OsId::kMiddleboxFronted) {
      continue;  // synthetic stand-ins, not part of the paper's table
    }
    cd::sim::EventLoop loop;
    cd::sim::Topology topology;
    cd::Rng rng(7);
    cd::sim::Network network(topology, loop, rng.split("n"));
    topology.add_as(1, cd::sim::FilterPolicy{});
    topology.announce(1, cd::net::Prefix::must_parse("60.0.0.0/16"));
    topology.announce(1, cd::net::Prefix::must_parse("2620:60::/32"));
    const auto v4 = cd::net::IpAddr::must_parse("60.0.0.1");
    const auto v6 = cd::net::IpAddr::must_parse("2620:60::1");
    cd::sim::Host host(network, 1, os, {v4, v6}, rng.split("h"), "dut");

    bool got[4] = {false, false, false, false};
    host.bind_udp(53, [&](const cd::net::Packet& pkt) {
      if (pkt.src == pkt.dst) {
        got[pkt.src.is_v4() ? 0 : 2] = true;
      } else {
        got[pkt.src.is_v4() ? 1 : 3] = true;
      }
    });
    network.send(cd::net::make_udp(v4, 1000, v4, 53, {0}), 1);
    network.send(
        cd::net::make_udp(cd::net::IpAddr::must_parse("127.0.0.1"), 1000, v4,
                          53, {0}),
        1);
    network.send(cd::net::make_udp(v6, 1000, v6, 53, {0}), 1);
    network.send(cd::net::make_udp(cd::net::IpAddr::must_parse("::1"), 1000,
                                   v6, 53, {0}),
                 1);
    loop.run(1000);

    std::string bits;
    for (const bool b : got) bits += b ? '1' : '0';
    rows.emplace_back(os.name, bits);
  }

  if (golden_print()) {
    for (const auto& [name, bits] : rows) {
      std::printf("    {\"%s\", \"%s\"},\n", name.c_str(), bits.c_str());
    }
    GTEST_SKIP() << "golden print mode";
  }

  ASSERT_EQ(rows.size(), std::size(kGoldenAcceptance));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].first, kGoldenAcceptance[i].name);
    EXPECT_EQ(rows[i].second, kGoldenAcceptance[i].accepted)
        << "OS " << rows[i].first;
  }
}

}  // namespace
