// Unit tests: DNS message wire codec across all record types and flags.
#include <gtest/gtest.h>

#include "dns/message.h"
#include "util/error.h"

namespace {

using namespace cd;
using dns::DnsMessage;
using dns::DnsName;
using dns::DnsRr;
using dns::Rcode;
using dns::RrType;
using net::IpAddr;

DnsMessage round_trip(const DnsMessage& m) {
  return DnsMessage::decode(m.encode());
}

TEST(DnsMessage, HeaderFlagsRoundTrip) {
  DnsMessage m;
  m.header.id = 0xABCD;
  m.header.qr = true;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = true;
  m.header.ra = true;
  m.header.rcode = Rcode::kNxDomain;
  m.header.opcode = dns::Opcode::kUpdate;
  EXPECT_EQ(round_trip(m), m);
}

TEST(DnsMessage, QueryRoundTrip) {
  const auto q = dns::make_query(42, DnsName::must_parse("x.example.org"),
                                 RrType::kAaaa);
  EXPECT_EQ(q.header.rd, true);
  EXPECT_EQ(round_trip(q), q);
}

// Parameterized over every rdata type we interpret.
class RdataRoundTrip : public ::testing::TestWithParam<DnsRr> {};

TEST_P(RdataRoundTrip, EncodesAndDecodes) {
  DnsMessage m;
  m.header.qr = true;
  m.answers.push_back(GetParam());
  const DnsMessage out = round_trip(m);
  ASSERT_EQ(out.answers.size(), 1u);
  EXPECT_EQ(out.answers[0], GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, RdataRoundTrip,
    ::testing::Values(
        dns::make_a(DnsName::must_parse("a.example.org"),
                    IpAddr::must_parse("192.0.2.1"), 60),
        dns::make_aaaa(DnsName::must_parse("a.example.org"),
                       IpAddr::must_parse("2001:db8::1"), 61),
        dns::make_ns(DnsName::must_parse("example.org"),
                     DnsName::must_parse("ns1.example.org"), 62),
        dns::make_cname(DnsName::must_parse("www.example.org"),
                        DnsName::must_parse("host.example.org"), 63),
        dns::make_ptr(DnsName::must_parse("1.2.0.192.in-addr.arpa"),
                      DnsName::must_parse("host.example.org"), 64),
        dns::make_txt(DnsName::must_parse("example.org"), "hello world", 65),
        dns::make_soa(DnsName::must_parse("example.org"),
                      dns::SoaRdata{DnsName::must_parse("mname.example.org"),
                                    DnsName::must_parse("rname.example.org"),
                                    2019, 7200, 3600, 1209600, 300},
                      66)));

TEST(DnsMessage, LongTxtChunks) {
  const std::string text(700, 'x');
  DnsMessage m;
  m.answers.push_back(dns::make_txt(DnsName::must_parse("t.org"), text));
  const DnsMessage out = round_trip(m);
  const auto* txt = std::get_if<dns::TxtRdata>(&out.answers[0].rdata);
  ASSERT_NE(txt, nullptr);
  EXPECT_EQ(txt->text, text);
}

TEST(DnsMessage, EmptyTxt) {
  DnsMessage m;
  m.answers.push_back(dns::make_txt(DnsName::must_parse("t.org"), ""));
  const DnsMessage out = round_trip(m);
  EXPECT_EQ(std::get<dns::TxtRdata>(out.answers[0].rdata).text, "");
}

TEST(DnsMessage, AllSectionsRoundTrip) {
  DnsMessage m = dns::make_query(7, DnsName::must_parse("q.example.org"),
                                 RrType::kA);
  m.header.qr = true;
  m.answers.push_back(dns::make_cname(DnsName::must_parse("q.example.org"),
                                      DnsName::must_parse("r.example.org")));
  m.answers.push_back(dns::make_a(DnsName::must_parse("r.example.org"),
                                  IpAddr::must_parse("192.0.2.7")));
  m.authorities.push_back(dns::make_ns(DnsName::must_parse("example.org"),
                                       DnsName::must_parse("ns.example.org")));
  m.additionals.push_back(dns::make_a(DnsName::must_parse("ns.example.org"),
                                      IpAddr::must_parse("192.0.2.8")));
  EXPECT_EQ(round_trip(m), m);
}

TEST(DnsMessage, CompressionMakesRepeatedNamesCheap) {
  DnsMessage m = dns::make_query(1, DnsName::must_parse("host.example.org"),
                                 RrType::kA);
  DnsMessage big = m;
  for (int i = 0; i < 10; ++i) {
    big.answers.push_back(dns::make_a(DnsName::must_parse("host.example.org"),
                                      IpAddr::v4(0x01020300u + static_cast<unsigned>(i))));
  }
  // Each additional A record should cost far less than a full name.
  const std::size_t per_record =
      (big.encode().size() - m.encode().size()) / 10;
  EXPECT_LE(per_record, 16u);
  EXPECT_EQ(round_trip(big), big);
}

TEST(DnsMessage, UnknownTypeCarriedRaw) {
  DnsMessage m;
  DnsRr rr;
  rr.name = DnsName::must_parse("x.org");
  rr.type = static_cast<RrType>(99);
  rr.rdata = dns::RawRdata{{1, 2, 3, 4}};
  m.answers.push_back(rr);
  const DnsMessage out = round_trip(m);
  EXPECT_EQ(std::get<dns::RawRdata>(out.answers[0].rdata).bytes,
            (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(DnsMessage, DecodeTruncatedThrows) {
  auto wire = dns::make_query(9, DnsName::must_parse("abc.example.org"),
                              RrType::kA)
                  .encode();
  for (const std::size_t cut : {2ul, 11ul, wire.size() - 1}) {
    std::vector<std::uint8_t> trunc(wire.begin(),
                                    wire.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)DnsMessage::decode(trunc), ParseError) << cut;
  }
}

TEST(DnsMessage, MakeResponseEchoesQuestion) {
  const auto q = dns::make_query(55, DnsName::must_parse("q.org"), RrType::kA);
  const auto r = dns::make_response(q, Rcode::kRefused);
  EXPECT_TRUE(r.header.qr);
  EXPECT_EQ(r.header.id, 55);
  EXPECT_EQ(r.header.rcode, Rcode::kRefused);
  ASSERT_EQ(r.questions.size(), 1u);
  EXPECT_EQ(r.qname(), q.qname());
}

TEST(DnsMessage, QnameOfEmptyMessage) {
  EXPECT_EQ(DnsMessage{}.qname(), DnsName());
}

TEST(DnsMessage, WrongFamilyRdataRejected) {
  DnsMessage m;
  DnsRr rr;
  rr.name = DnsName::must_parse("x.org");
  rr.type = RrType::kA;
  rr.rdata = dns::ARdata{IpAddr::must_parse("2001:db8::1")};  // v6 in A
  m.answers.push_back(rr);
  EXPECT_THROW((void)m.encode(), InvariantError);
}

TEST(DnsMessage, NamesForTypesAndRcodes) {
  EXPECT_EQ(dns::rr_type_name(RrType::kA), "A");
  EXPECT_EQ(dns::rr_type_name(RrType::kAaaa), "AAAA");
  EXPECT_EQ(dns::rr_type_name(static_cast<RrType>(99)), "TYPE99");
  EXPECT_EQ(dns::rcode_name(Rcode::kNxDomain), "NXDOMAIN");
  EXPECT_EQ(dns::rcode_name(Rcode::kRefused), "REFUSED");
}

TEST(DnsMessage, RrToStringContainsFields) {
  const auto rr = dns::make_a(DnsName::must_parse("h.org"),
                              IpAddr::must_parse("192.0.2.1"), 77);
  const std::string s = rr.to_string();
  EXPECT_NE(s.find("h.org."), std::string::npos);
  EXPECT_NE(s.find("77"), std::string::npos);
  EXPECT_NE(s.find("192.0.2.1"), std::string::npos);
}

}  // namespace
