// Unit tests: DNS message wire codec across all record types and flags.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dns/message.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace cd;
using dns::DnsMessage;
using dns::DnsName;
using dns::DnsRr;
using dns::Rcode;
using dns::RrType;
using net::IpAddr;

DnsMessage round_trip(const DnsMessage& m) {
  return DnsMessage::decode(m.encode());
}

TEST(DnsMessage, HeaderFlagsRoundTrip) {
  DnsMessage m;
  m.header.id = 0xABCD;
  m.header.qr = true;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = true;
  m.header.ra = true;
  m.header.rcode = Rcode::kNxDomain;
  m.header.opcode = dns::Opcode::kUpdate;
  EXPECT_EQ(round_trip(m), m);
}

TEST(DnsMessage, QueryRoundTrip) {
  const auto q = dns::make_query(42, DnsName::must_parse("x.example.org"),
                                 RrType::kAaaa);
  EXPECT_EQ(q.header.rd, true);
  EXPECT_EQ(round_trip(q), q);
}

// Parameterized over every rdata type we interpret.
class RdataRoundTrip : public ::testing::TestWithParam<DnsRr> {};

TEST_P(RdataRoundTrip, EncodesAndDecodes) {
  DnsMessage m;
  m.header.qr = true;
  m.answers.push_back(GetParam());
  const DnsMessage out = round_trip(m);
  ASSERT_EQ(out.answers.size(), 1u);
  EXPECT_EQ(out.answers[0], GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, RdataRoundTrip,
    ::testing::Values(
        dns::make_a(DnsName::must_parse("a.example.org"),
                    IpAddr::must_parse("192.0.2.1"), 60),
        dns::make_aaaa(DnsName::must_parse("a.example.org"),
                       IpAddr::must_parse("2001:db8::1"), 61),
        dns::make_ns(DnsName::must_parse("example.org"),
                     DnsName::must_parse("ns1.example.org"), 62),
        dns::make_cname(DnsName::must_parse("www.example.org"),
                        DnsName::must_parse("host.example.org"), 63),
        dns::make_ptr(DnsName::must_parse("1.2.0.192.in-addr.arpa"),
                      DnsName::must_parse("host.example.org"), 64),
        dns::make_txt(DnsName::must_parse("example.org"), "hello world", 65),
        dns::make_soa(DnsName::must_parse("example.org"),
                      dns::SoaRdata{DnsName::must_parse("mname.example.org"),
                                    DnsName::must_parse("rname.example.org"),
                                    2019, 7200, 3600, 1209600, 300},
                      66)));

TEST(DnsMessage, LongTxtChunks) {
  const std::string text(700, 'x');
  DnsMessage m;
  m.answers.push_back(dns::make_txt(DnsName::must_parse("t.org"), text));
  const DnsMessage out = round_trip(m);
  const auto* txt = std::get_if<dns::TxtRdata>(&out.answers[0].rdata);
  ASSERT_NE(txt, nullptr);
  EXPECT_EQ(txt->text, text);
}

TEST(DnsMessage, EmptyTxt) {
  DnsMessage m;
  m.answers.push_back(dns::make_txt(DnsName::must_parse("t.org"), ""));
  const DnsMessage out = round_trip(m);
  EXPECT_EQ(std::get<dns::TxtRdata>(out.answers[0].rdata).text, "");
}

TEST(DnsMessage, AllSectionsRoundTrip) {
  DnsMessage m = dns::make_query(7, DnsName::must_parse("q.example.org"),
                                 RrType::kA);
  m.header.qr = true;
  m.answers.push_back(dns::make_cname(DnsName::must_parse("q.example.org"),
                                      DnsName::must_parse("r.example.org")));
  m.answers.push_back(dns::make_a(DnsName::must_parse("r.example.org"),
                                  IpAddr::must_parse("192.0.2.7")));
  m.authorities.push_back(dns::make_ns(DnsName::must_parse("example.org"),
                                       DnsName::must_parse("ns.example.org")));
  m.additionals.push_back(dns::make_a(DnsName::must_parse("ns.example.org"),
                                      IpAddr::must_parse("192.0.2.8")));
  EXPECT_EQ(round_trip(m), m);
}

TEST(DnsMessage, CompressionMakesRepeatedNamesCheap) {
  DnsMessage m = dns::make_query(1, DnsName::must_parse("host.example.org"),
                                 RrType::kA);
  DnsMessage big = m;
  for (int i = 0; i < 10; ++i) {
    big.answers.push_back(dns::make_a(DnsName::must_parse("host.example.org"),
                                      IpAddr::v4(0x01020300u + static_cast<unsigned>(i))));
  }
  // Each additional A record should cost far less than a full name.
  const std::size_t per_record =
      (big.encode().size() - m.encode().size()) / 10;
  EXPECT_LE(per_record, 16u);
  EXPECT_EQ(round_trip(big), big);
}

TEST(DnsMessage, UnknownTypeCarriedRaw) {
  DnsMessage m;
  DnsRr rr;
  rr.name = DnsName::must_parse("x.org");
  rr.type = static_cast<RrType>(99);
  rr.rdata = dns::RawRdata{{1, 2, 3, 4}};
  m.answers.push_back(rr);
  const DnsMessage out = round_trip(m);
  EXPECT_EQ(std::get<dns::RawRdata>(out.answers[0].rdata).bytes,
            (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(DnsMessage, DecodeTruncatedThrows) {
  auto wire = dns::make_query(9, DnsName::must_parse("abc.example.org"),
                              RrType::kA)
                  .encode();
  for (const std::size_t cut : {2ul, 11ul, wire.size() - 1}) {
    std::vector<std::uint8_t> trunc(wire.begin(),
                                    wire.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)DnsMessage::decode(trunc), ParseError) << cut;
  }
}

TEST(DnsMessage, MakeResponseEchoesQuestion) {
  const auto q = dns::make_query(55, DnsName::must_parse("q.org"), RrType::kA);
  const auto r = dns::make_response(q, Rcode::kRefused);
  EXPECT_TRUE(r.header.qr);
  EXPECT_EQ(r.header.id, 55);
  EXPECT_EQ(r.header.rcode, Rcode::kRefused);
  ASSERT_EQ(r.questions.size(), 1u);
  EXPECT_EQ(r.qname(), q.qname());
}

TEST(DnsMessage, QnameOfEmptyMessage) {
  EXPECT_EQ(DnsMessage{}.qname(), DnsName());
}

TEST(DnsMessage, WrongFamilyRdataRejected) {
  DnsMessage m;
  DnsRr rr;
  rr.name = DnsName::must_parse("x.org");
  rr.type = RrType::kA;
  rr.rdata = dns::ARdata{IpAddr::must_parse("2001:db8::1")};  // v6 in A
  m.answers.push_back(rr);
  EXPECT_THROW((void)m.encode(), InvariantError);
}

TEST(DnsMessage, NamesForTypesAndRcodes) {
  EXPECT_EQ(dns::rr_type_name(RrType::kA), "A");
  EXPECT_EQ(dns::rr_type_name(RrType::kAaaa), "AAAA");
  EXPECT_EQ(dns::rr_type_name(static_cast<RrType>(99)), "TYPE99");
  EXPECT_EQ(dns::rcode_name(Rcode::kNxDomain), "NXDOMAIN");
  EXPECT_EQ(dns::rcode_name(Rcode::kRefused), "REFUSED");
}

TEST(DnsMessage, RrToStringContainsFields) {
  const auto rr = dns::make_a(DnsName::must_parse("h.org"),
                              IpAddr::must_parse("192.0.2.1"), 77);
  const std::string s = rr.to_string();
  EXPECT_NE(s.find("h.org."), std::string::npos);
  EXPECT_NE(s.find("77"), std::string::npos);
  EXPECT_NE(s.find("192.0.2.1"), std::string::npos);
}

// --- bit-flip fuzz ----------------------------------------------------------
// Mirrors the test_util_pcap fuzzer: mutate valid wire messages and demand
// that decode() either succeeds (and the result re-encodes without crashing)
// or throws ParseError — never anything else, never an over-read (ASan runs
// this under the "fuzz" CTest label).

/// Seed corpus: one encoding of each interesting message shape.
std::vector<std::vector<std::uint8_t>> fuzz_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;

  // Experiment-template query (the hot path: every probe decodes one).
  corpus.push_back(
      dns::make_query(0x1234,
                      DnsName::must_parse(
                          "1f2e3d.c0000201.c0000202.64.m1.x1.v4.dns-lab.org"),
                      RrType::kA)
          .encode());

  // All-sections response over compression-friendly names (shared suffixes
  // exercise pointer encoding; flips here hit the pointer decode paths).
  {
    const auto q = dns::make_query(7, DnsName::must_parse("a.b.example.org"),
                                   RrType::kA);
    DnsMessage r = dns::make_response(q, Rcode::kNoError);
    r.answers.push_back(
        dns::make_a(q.qname(), IpAddr::must_parse("192.0.2.1"), 60));
    r.answers.push_back(dns::make_cname(
        q.qname(), DnsName::must_parse("c.b.example.org"), 60));
    r.authorities.push_back(
        dns::make_ns(DnsName::must_parse("example.org"),
                     DnsName::must_parse("ns1.example.org"), 300));
    r.additionals.push_back(
        dns::make_aaaa(DnsName::must_parse("ns1.example.org"),
                       IpAddr::must_parse("2001:db8::53"), 300));
    corpus.push_back(r.encode());
  }

  // Long TXT rdata (character-string length bytes to corrupt).
  {
    const auto q =
        dns::make_query(8, DnsName::must_parse("t.example.org"), RrType::kTxt);
    DnsMessage r = dns::make_response(q, Rcode::kNoError);
    r.answers.push_back(
        dns::make_txt(q.qname(), std::string(180, 'x'), 60));
    corpus.push_back(r.encode());
  }

  // Unknown-type RR carried as raw rdata.
  {
    const auto q =
        dns::make_query(9, DnsName::must_parse("raw.example.org"), RrType::kA);
    DnsMessage r = dns::make_response(q, Rcode::kNoError);
    DnsRr rr;
    rr.name = q.qname();
    rr.type = static_cast<RrType>(999);
    rr.ttl = 1;
    rr.rdata = dns::RawRdata{{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}};
    r.answers.push_back(rr);
    corpus.push_back(r.encode());
  }
  return corpus;
}

TEST(DnsBitFlipFuzz, MutationsDecodeOrThrowParseError) {
  const auto corpus = fuzz_corpus();
  Rng rng(0xD45F);
  for (int i = 0; i < 400; ++i) {
    auto wire = corpus[rng.uniform(corpus.size())];
    const std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t j = 0; j < flips; ++j) {
      wire[rng.uniform(wire.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    try {
      const DnsMessage msg = DnsMessage::decode(wire);
      (void)msg.encode();  // a survivor must still round-trip sanely
    } catch (const ParseError&) {
      // expected for most mutations; anything else fails the test
    }
  }
}

// --- malformed-input regressions --------------------------------------------
// Hand-crafted wire bytes for decoder edge cases a random flip rarely finds.

/// A 12-byte header claiming `qdcount` questions and nothing else set.
std::vector<std::uint8_t> header_only(std::uint16_t qdcount) {
  std::vector<std::uint8_t> b(12, 0);
  b[1] = 1;  // id
  b[4] = static_cast<std::uint8_t>(qdcount >> 8);
  b[5] = static_cast<std::uint8_t>(qdcount & 0xFF);
  return b;
}

TEST(DnsMalformed, HeaderShorterThanTwelveBytesThrows) {
  for (std::size_t n = 0; n < 12; ++n) {
    const std::vector<std::uint8_t> wire(n, 0);
    EXPECT_THROW((void)DnsMessage::decode(wire), ParseError) << n;
  }
}

TEST(DnsMalformed, QdcountPastActualQuestionsThrows) {
  EXPECT_THROW((void)DnsMessage::decode(header_only(3)), ParseError);
}

TEST(DnsMalformed, LabelLengthRunsPastEndThrows) {
  auto wire = header_only(1);
  wire.push_back(63);  // 63-byte label announced, one byte present
  wire.push_back('a');
  EXPECT_THROW((void)DnsMessage::decode(wire), ParseError);
}

TEST(DnsMalformed, CompressionPointerSelfLoopRejected) {
  auto wire = header_only(1);
  wire.push_back(0xC0);  // pointer to offset 12 — itself
  wire.push_back(12);
  wire.insert(wire.end(), {0, 1, 0, 1});  // qtype A, qclass IN
  EXPECT_THROW((void)DnsMessage::decode(wire), ParseError);
}

TEST(DnsMalformed, CompressionPointerForwardChainRejected) {
  auto wire = header_only(1);
  wire.push_back(0xC0);  // offset 12 -> 14
  wire.push_back(14);
  wire.push_back(0xC0);  // offset 14 -> 12: a loop either way
  wire.push_back(12);
  wire.insert(wire.end(), {0, 1, 0, 1});
  EXPECT_THROW((void)DnsMessage::decode(wire), ParseError);
}

TEST(DnsMalformed, RdlengthPastEndThrows) {
  auto q = dns::make_query(1, DnsName::must_parse("r.org"), RrType::kA);
  q.header.qr = true;
  auto wire = q.encode();
  // Claim one answer: root name, type A, class IN, ttl 0, rdlength 200,
  // but only 4 rdata bytes follow.
  wire[7] = 1;  // ancount
  wire.insert(wire.end(), {0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00,
                           0x00, 0x00, 200, 1, 2, 3, 4});
  EXPECT_THROW((void)DnsMessage::decode(wire), ParseError);
}

}  // namespace
