// Unit + property tests: spoofed-source selection (§3.2).
#include <gtest/gtest.h>

#include <set>

#include "net/special.h"
#include "scanner/source_select.h"

namespace {

using namespace cd;
using net::IpAddr;
using net::Prefix;
using scanner::SourceCategory;
using scanner::SourceSelector;
using scanner::SpoofedSource;

struct SelectFixture {
  sim::Topology topology;

  SelectFixture() {
    topology.add_as(100);  // large AS: a /16 (256 /24s)
    topology.announce(100, Prefix::must_parse("20.0.0.0/16"));
    topology.add_as(200);  // small AS: one /22 (4 /24s)
    topology.announce(200, Prefix::must_parse("21.0.0.0/22"));
    topology.add_as(300);  // v6 AS
    topology.announce(300, Prefix::must_parse("2400:30::/32"));
    topology.announce(300, Prefix::must_parse("22.0.0.0/24"));
  }

  SourceSelector make(std::vector<IpAddr> hitlist = {},
                      scanner::SourceSelectConfig config = {}) {
    return SourceSelector(topology, std::move(hitlist), config, Rng(5));
  }
};

std::map<SourceCategory, std::vector<IpAddr>> by_category(
    const std::vector<SpoofedSource>& sources) {
  std::map<SourceCategory, std::vector<IpAddr>> out;
  for (const auto& s : sources) out[s.category].push_back(s.addr);
  return out;
}

TEST(SourceSelector, AllCategoriesPresentV4) {
  SelectFixture f;
  auto selector = f.make();
  const auto target = IpAddr::must_parse("20.0.5.10");
  const auto cats = by_category(selector.sources_for(target, 100));
  EXPECT_EQ(cats.at(SourceCategory::kOtherPrefix).size(), 97u);
  EXPECT_EQ(cats.at(SourceCategory::kSamePrefix).size(), 1u);
  EXPECT_EQ(cats.at(SourceCategory::kPrivate),
            std::vector<IpAddr>{IpAddr::must_parse("192.168.0.10")});
  EXPECT_EQ(cats.at(SourceCategory::kDstAsSrc), std::vector<IpAddr>{target});
  EXPECT_EQ(cats.at(SourceCategory::kLoopback),
            std::vector<IpAddr>{IpAddr::must_parse("127.0.0.1")});
}

TEST(SourceSelector, TotalNeverExceeds101) {
  SelectFixture f;
  auto selector = f.make();
  EXPECT_LE(selector.sources_for(IpAddr::must_parse("20.0.5.10"), 100).size(),
            101u);
}

TEST(SourceSelector, SmallAsYieldsFewerOtherPrefixes) {
  SelectFixture f;
  auto selector = f.make();
  const auto cats =
      by_category(selector.sources_for(IpAddr::must_parse("21.0.1.7"), 200));
  // 4 /24s minus the target's own leaves 3.
  EXPECT_EQ(cats.at(SourceCategory::kOtherPrefix).size(), 3u);
}

TEST(SourceSelector, OtherPrefixPropertiesV4) {
  SelectFixture f;
  auto selector = f.make();
  const auto target = IpAddr::must_parse("20.0.5.10");
  const Prefix target_p24(target, 24);
  const auto cats = by_category(selector.sources_for(target, 100));
  std::set<net::U128, net::U128Hash> p24s;
  std::set<cd::net::U128> unused;
  std::set<std::string> seen24;
  for (const IpAddr& addr : cats.at(SourceCategory::kOtherPrefix)) {
    // In the AS, not in the target's own /24, one per /24, valid host part.
    EXPECT_TRUE(Prefix::must_parse("20.0.0.0/16").contains(addr));
    EXPECT_FALSE(target_p24.contains(addr));
    const std::uint32_t last_octet = addr.v4_bits() & 0xFF;
    EXPECT_GE(last_octet, 1u);
    EXPECT_LE(last_octet, 254u);
    EXPECT_TRUE(seen24.insert(Prefix(addr, 24).to_string()).second)
        << "duplicate /24";
  }
}

TEST(SourceSelector, SamePrefixInTargets24ButDistinct) {
  SelectFixture f;
  auto selector = f.make();
  for (int i = 0; i < 20; ++i) {
    const auto target = IpAddr::v4(0x14000000u + static_cast<unsigned>(i * 259 + 17));
    const auto cats = by_category(selector.sources_for(target, 100));
    const IpAddr same = cats.at(SourceCategory::kSamePrefix).front();
    EXPECT_TRUE(Prefix(target, 24).contains(same));
    EXPECT_NE(same, target);
  }
}

TEST(SourceSelector, V6UsesUlaAndV6Loopback) {
  SelectFixture f;
  auto selector = f.make();
  const auto target = IpAddr::must_parse("2400:30:0:5::10");
  const auto cats = by_category(selector.sources_for(target, 300));
  EXPECT_EQ(cats.at(SourceCategory::kPrivate),
            std::vector<IpAddr>{IpAddr::must_parse("fc00::10")});
  EXPECT_EQ(cats.at(SourceCategory::kLoopback),
            std::vector<IpAddr>{IpAddr::must_parse("::1")});
}

TEST(SourceSelector, V6HostSelectionWindow) {
  SelectFixture f;
  auto selector = f.make();
  const auto target = IpAddr::must_parse("2400:30:0:5::10");
  const auto cats = by_category(selector.sources_for(target, 300));
  for (const IpAddr& addr : cats.at(SourceCategory::kOtherPrefix)) {
    EXPECT_TRUE(addr.is_v6());
    // Within the first 100 addresses of its /64, skipping the first 2.
    const std::uint64_t offset = addr.bits().lo & 0xFFFFFFFFFFFFFFFFULL;
    const std::uint64_t host = offset - (Prefix(addr, 64).base().bits().lo);
    EXPECT_GE(host, 2u);
    EXPECT_LT(host, 100u);
  }
  const IpAddr same = cats.at(SourceCategory::kSamePrefix).front();
  EXPECT_TRUE(Prefix(target, 64).contains(same));
  EXPECT_NE(same, target);
}

TEST(SourceSelector, HitlistBiasesV6Selection) {
  SelectFixture f;
  // Hitlist: three active /64s in AS 300.
  std::vector<IpAddr> hitlist = {IpAddr::must_parse("2400:30:0:aa::5"),
                                 IpAddr::must_parse("2400:30:0:bb::9"),
                                 IpAddr::must_parse("2400:30:0:cc::1")};
  auto selector = f.make(hitlist);
  const auto target = IpAddr::must_parse("2400:30:0:5::10");
  const auto cats = by_category(selector.sources_for(target, 300));
  std::set<std::string> chosen64;
  for (const IpAddr& addr : cats.at(SourceCategory::kOtherPrefix)) {
    chosen64.insert(Prefix(addr, 64).to_string());
  }
  // All hitlist /64s appear among the selected other-prefixes.
  EXPECT_TRUE(chosen64.count("2400:30:0:aa::/64"));
  EXPECT_TRUE(chosen64.count("2400:30:0:bb::/64"));
  EXPECT_TRUE(chosen64.count("2400:30:0:cc::/64"));
}

TEST(SourceSelector, DeterministicPerTarget) {
  SelectFixture f;
  auto s1 = f.make();
  auto s2 = f.make();
  const auto target = IpAddr::must_parse("20.0.77.42");
  // Same seed, same target -> identical lists, regardless of call order.
  (void)s2.sources_for(IpAddr::must_parse("20.0.1.1"), 100);
  EXPECT_EQ(s1.sources_for(target, 100), s2.sources_for(target, 100));
}

TEST(SourceSelector, CapConfigurable) {
  SelectFixture f;
  scanner::SourceSelectConfig config;
  config.max_other_prefixes = 10;
  auto selector = f.make({}, config);
  const auto cats =
      by_category(selector.sources_for(IpAddr::must_parse("20.0.5.10"), 100));
  EXPECT_EQ(cats.at(SourceCategory::kOtherPrefix).size(), 10u);
}

TEST(SourceSelector, CategoryNames) {
  EXPECT_EQ(scanner::source_category_name(SourceCategory::kOtherPrefix),
            "Other Prefix");
  EXPECT_EQ(scanner::source_category_name(SourceCategory::kLoopback),
            "Loopback");
}

}  // namespace
