// Unit + property tests: spoofed-source selection (§3.2).
#include <gtest/gtest.h>

#include <set>

#include "net/special.h"
#include "scanner/source_select.h"

namespace {

using namespace cd;
using net::IpAddr;
using net::Prefix;
using scanner::SourceCategory;
using scanner::SourceSelector;
using scanner::SpoofedSource;

struct SelectFixture {
  sim::Topology topology;

  SelectFixture() {
    topology.add_as(100);  // large AS: a /16 (256 /24s)
    topology.announce(100, Prefix::must_parse("20.0.0.0/16"));
    topology.add_as(200);  // small AS: one /22 (4 /24s)
    topology.announce(200, Prefix::must_parse("21.0.0.0/22"));
    topology.add_as(300);  // v6 AS
    topology.announce(300, Prefix::must_parse("2400:30::/32"));
    topology.announce(300, Prefix::must_parse("22.0.0.0/24"));
  }

  SourceSelector make(std::vector<IpAddr> hitlist = {},
                      scanner::SourceSelectConfig config = {}) {
    return SourceSelector(topology, std::move(hitlist), config, Rng(5));
  }
};

std::map<SourceCategory, std::vector<IpAddr>> by_category(
    const std::vector<SpoofedSource>& sources) {
  std::map<SourceCategory, std::vector<IpAddr>> out;
  for (const auto& s : sources) out[s.category].push_back(s.addr);
  return out;
}

TEST(SourceSelector, AllCategoriesPresentV4) {
  SelectFixture f;
  auto selector = f.make();
  const auto target = IpAddr::must_parse("20.0.5.10");
  const auto cats = by_category(selector.sources_for(target, 100));
  EXPECT_EQ(cats.at(SourceCategory::kOtherPrefix).size(), 97u);
  EXPECT_EQ(cats.at(SourceCategory::kSamePrefix).size(), 1u);
  EXPECT_EQ(cats.at(SourceCategory::kPrivate),
            std::vector<IpAddr>{IpAddr::must_parse("192.168.0.10")});
  EXPECT_EQ(cats.at(SourceCategory::kDstAsSrc), std::vector<IpAddr>{target});
  EXPECT_EQ(cats.at(SourceCategory::kLoopback),
            std::vector<IpAddr>{IpAddr::must_parse("127.0.0.1")});
}

TEST(SourceSelector, TotalNeverExceeds101) {
  SelectFixture f;
  auto selector = f.make();
  EXPECT_LE(selector.sources_for(IpAddr::must_parse("20.0.5.10"), 100).size(),
            101u);
}

TEST(SourceSelector, SmallAsYieldsFewerOtherPrefixes) {
  SelectFixture f;
  auto selector = f.make();
  const auto cats =
      by_category(selector.sources_for(IpAddr::must_parse("21.0.1.7"), 200));
  // 4 /24s minus the target's own leaves 3.
  EXPECT_EQ(cats.at(SourceCategory::kOtherPrefix).size(), 3u);
}

TEST(SourceSelector, OtherPrefixPropertiesV4) {
  SelectFixture f;
  auto selector = f.make();
  const auto target = IpAddr::must_parse("20.0.5.10");
  const Prefix target_p24(target, 24);
  const auto cats = by_category(selector.sources_for(target, 100));
  std::set<net::U128, net::U128Hash> p24s;
  std::set<cd::net::U128> unused;
  std::set<std::string> seen24;
  for (const IpAddr& addr : cats.at(SourceCategory::kOtherPrefix)) {
    // In the AS, not in the target's own /24, one per /24, valid host part.
    EXPECT_TRUE(Prefix::must_parse("20.0.0.0/16").contains(addr));
    EXPECT_FALSE(target_p24.contains(addr));
    const std::uint32_t last_octet = addr.v4_bits() & 0xFF;
    EXPECT_GE(last_octet, 1u);
    EXPECT_LE(last_octet, 254u);
    EXPECT_TRUE(seen24.insert(Prefix(addr, 24).to_string()).second)
        << "duplicate /24";
  }
}

TEST(SourceSelector, SamePrefixInTargets24ButDistinct) {
  SelectFixture f;
  auto selector = f.make();
  for (int i = 0; i < 20; ++i) {
    const auto target = IpAddr::v4(0x14000000u + static_cast<unsigned>(i * 259 + 17));
    const auto cats = by_category(selector.sources_for(target, 100));
    const IpAddr same = cats.at(SourceCategory::kSamePrefix).front();
    EXPECT_TRUE(Prefix(target, 24).contains(same));
    EXPECT_NE(same, target);
  }
}

TEST(SourceSelector, V6UsesUlaAndV6Loopback) {
  SelectFixture f;
  auto selector = f.make();
  const auto target = IpAddr::must_parse("2400:30:0:5::10");
  const auto cats = by_category(selector.sources_for(target, 300));
  EXPECT_EQ(cats.at(SourceCategory::kPrivate),
            std::vector<IpAddr>{IpAddr::must_parse("fc00::10")});
  EXPECT_EQ(cats.at(SourceCategory::kLoopback),
            std::vector<IpAddr>{IpAddr::must_parse("::1")});
}

TEST(SourceSelector, V6HostSelectionWindow) {
  SelectFixture f;
  auto selector = f.make();
  const auto target = IpAddr::must_parse("2400:30:0:5::10");
  const auto cats = by_category(selector.sources_for(target, 300));
  for (const IpAddr& addr : cats.at(SourceCategory::kOtherPrefix)) {
    EXPECT_TRUE(addr.is_v6());
    // Within the first 100 addresses of its /64, skipping the first 2.
    const std::uint64_t offset = addr.bits().lo & 0xFFFFFFFFFFFFFFFFULL;
    const std::uint64_t host = offset - (Prefix(addr, 64).base().bits().lo);
    EXPECT_GE(host, 2u);
    EXPECT_LT(host, 100u);
  }
  const IpAddr same = cats.at(SourceCategory::kSamePrefix).front();
  EXPECT_TRUE(Prefix(target, 64).contains(same));
  EXPECT_NE(same, target);
}

TEST(SourceSelector, HitlistBiasesV6Selection) {
  SelectFixture f;
  // Hitlist: three active /64s in AS 300.
  std::vector<IpAddr> hitlist = {IpAddr::must_parse("2400:30:0:aa::5"),
                                 IpAddr::must_parse("2400:30:0:bb::9"),
                                 IpAddr::must_parse("2400:30:0:cc::1")};
  auto selector = f.make(hitlist);
  const auto target = IpAddr::must_parse("2400:30:0:5::10");
  const auto cats = by_category(selector.sources_for(target, 300));
  std::set<std::string> chosen64;
  for (const IpAddr& addr : cats.at(SourceCategory::kOtherPrefix)) {
    chosen64.insert(Prefix(addr, 64).to_string());
  }
  // All hitlist /64s appear among the selected other-prefixes.
  EXPECT_TRUE(chosen64.count("2400:30:0:aa::/64"));
  EXPECT_TRUE(chosen64.count("2400:30:0:bb::/64"));
  EXPECT_TRUE(chosen64.count("2400:30:0:cc::/64"));
}

TEST(SourceSelector, DeterministicPerTarget) {
  SelectFixture f;
  auto s1 = f.make();
  auto s2 = f.make();
  const auto target = IpAddr::must_parse("20.0.77.42");
  // Same seed, same target -> identical lists, regardless of call order.
  (void)s2.sources_for(IpAddr::must_parse("20.0.1.1"), 100);
  EXPECT_EQ(s1.sources_for(target, 100), s2.sources_for(target, 100));
}

TEST(SourceSelector, CapConfigurable) {
  SelectFixture f;
  scanner::SourceSelectConfig config;
  config.max_other_prefixes = 10;
  auto selector = f.make({}, config);
  const auto cats =
      by_category(selector.sources_for(IpAddr::must_parse("20.0.5.10"), 100));
  EXPECT_EQ(cats.at(SourceCategory::kOtherPrefix).size(), 10u);
}

// Property tests over a generated population: 500 v4 ASes with prefix
// lengths /16../24 and 500 v6 ASes with /40../48, one random target each.
// For every target the paper's selection invariants must hold: the
// other-prefix cap, one source per other subprefix, never the target's own
// /24 (/64), and host parts that skip network/broadcast (v4) or the
// router window (v6).
TEST(SourceSelectorProperty, RandomizedAsPopulation) {
  sim::Topology topology;
  Rng gen(0xA5);  // fixed seed: reproducible population
  struct Case {
    sim::Asn asn;
    Prefix prefix;
    IpAddr target;
  };
  std::vector<Case> cases;

  for (int i = 0; i < 500; ++i) {  // v4: distinct aligned /16 blocks
    const auto asn = static_cast<sim::Asn>(1000 + i);
    const IpAddr block = IpAddr::v4(static_cast<std::uint8_t>(40 + i / 256),
                                    static_cast<std::uint8_t>(i % 256), 0, 0);
    const int len = 16 + 2 * static_cast<int>(gen.uniform(5));  // 16..24
    const Prefix prefix(block, len);
    topology.add_as(asn);
    topology.announce(asn, prefix);
    const std::uint64_t host =
        1 + gen.uniform(std::min<std::uint64_t>(prefix.size_clamped() - 2,
                                                60000));
    cases.push_back({asn, prefix, prefix.nth(host)});
  }
  for (int i = 0; i < 500; ++i) {  // v6: distinct /32 blocks
    const auto asn = static_cast<sim::Asn>(5000 + i);
    const IpAddr block =
        IpAddr::v6(0x2600000000000000ULL | (static_cast<std::uint64_t>(i) << 32),
                   0);
    const int len = 40 + 2 * static_cast<int>(gen.uniform(5));  // 40..48
    const Prefix prefix(block, len);
    topology.add_as(asn);
    topology.announce(asn, prefix);
    // Random /64 within the prefix, random host in the active window.
    const std::uint64_t subnet = gen.uniform(1u << 10);
    const IpAddr p64 = prefix.base().offset_by(0).is_v6()
                           ? IpAddr::v6(prefix.base().bits().hi | subnet, 0)
                           : prefix.base();
    cases.push_back({asn, prefix, p64.offset_by(2 + gen.uniform(98))});
  }

  SourceSelector selector(topology, {}, {}, Rng(7));
  for (const Case& c : cases) {
    const int sub_len = c.target.is_v4() ? 24 : 64;
    const Prefix own(c.target, sub_len);
    const auto cats = by_category(selector.sources_for(c.target, c.asn));

    const auto other_it = cats.find(SourceCategory::kOtherPrefix);
    const std::size_t n_other =
        other_it == cats.end() ? 0 : other_it->second.size();
    EXPECT_LE(n_other, 97u) << c.target.to_string();
    const std::uint64_t subprefixes = c.prefix.count_subprefixes(sub_len);
    EXPECT_EQ(n_other,
              std::min<std::uint64_t>(97, subprefixes - 1))
        << c.prefix.to_string();

    std::set<std::string> seen_sub;
    if (other_it != cats.end()) {
      for (const IpAddr& addr : other_it->second) {
        EXPECT_TRUE(c.prefix.contains(addr)) << addr.to_string();
        EXPECT_FALSE(own.contains(addr))
            << addr.to_string() << " collides with target subprefix of "
            << c.target.to_string();
        EXPECT_TRUE(seen_sub.insert(Prefix(addr, sub_len).to_string()).second)
            << "two sources in one subprefix";
        if (addr.is_v4()) {
          const std::uint32_t octet = addr.v4_bits() & 0xFF;
          EXPECT_GE(octet, 1u) << addr.to_string();    // not network address
          EXPECT_LE(octet, 254u) << addr.to_string();  // not broadcast
        } else {
          const std::uint64_t host =
              addr.bits().lo - Prefix(addr, 64).base().bits().lo;
          EXPECT_GE(host, 2u) << addr.to_string();   // router window skipped
          EXPECT_LT(host, 100u) << addr.to_string(); // active window only
        }
      }
    }

    const auto& same = cats.at(SourceCategory::kSamePrefix);
    ASSERT_EQ(same.size(), 1u);
    EXPECT_TRUE(own.contains(same.front()));
    EXPECT_NE(same.front(), c.target);
    EXPECT_EQ(cats.at(SourceCategory::kDstAsSrc),
              std::vector<IpAddr>{c.target});
  }
}

TEST(SourceSelector, CategoryNames) {
  EXPECT_EQ(scanner::source_category_name(SourceCategory::kOtherPrefix),
            "Other Prefix");
  EXPECT_EQ(scanner::source_category_name(SourceCategory::kLoopback),
            "Loopback");
}

}  // namespace
