// Unit tests: authoritative server behaviour (answers, negatives, TC
// forcing, logging, TCP framing).
#include <gtest/gtest.h>

#include <algorithm>

#include "resolver/auth.h"
#include "sim/network.h"
#include "util/error.h"

namespace {

using namespace cd;
using dns::DnsMessage;
using dns::DnsName;
using dns::Rcode;
using dns::RrType;
using net::IpAddr;

struct AuthFixture {
  sim::EventLoop loop;
  sim::Topology topology;
  sim::Network network{topology, loop, Rng(11)};
  std::unique_ptr<sim::Host> host;
  std::unique_ptr<resolver::AuthServer> auth;

  AuthFixture() {
    topology.add_as(1);
    topology.announce(1, net::Prefix::must_parse("30.0.0.0/16"));
    topology.add_as(2);
    topology.announce(2, net::Prefix::must_parse("31.0.0.0/16"));
    host = std::make_unique<sim::Host>(
        network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
        std::vector<IpAddr>{IpAddr::must_parse("30.0.0.1")}, Rng(1), "auth");

    resolver::AuthConfig config;
    config.truncate_suffixes.push_back(DnsName::must_parse("tcp.test"));
    auth = std::make_unique<resolver::AuthServer>(*host, config);

    dns::SoaRdata soa;
    soa.mname = DnsName::must_parse("ns1.test");
    soa.rname = DnsName::must_parse("admin.test");
    auto zone = std::make_shared<dns::Zone>(DnsName::must_parse("test"), soa);
    zone->add(dns::make_a(DnsName::must_parse("www.test"),
                          IpAddr::must_parse("30.0.0.80")));
    zone->add(dns::make_ns(DnsName::must_parse("child.test"),
                           DnsName::must_parse("ns.child-host.test")));
    zone->add(dns::make_a(DnsName::must_parse("ns.child-host.test"),
                          IpAddr::must_parse("30.0.0.90")));
    auth->add_zone(zone);
  }

  DnsMessage ask(const char* qname, RrType type = RrType::kA,
                 bool tcp = false) {
    return auth->answer(dns::make_query(1, DnsName::must_parse(qname), type),
                        tcp);
  }
};

TEST(AuthServer, AnswersFromZone) {
  AuthFixture f;
  const auto resp = f.ask("www.test");
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.header.aa);
  ASSERT_EQ(resp.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(resp.answers[0].rdata).addr,
            IpAddr::must_parse("30.0.0.80"));
}

TEST(AuthServer, NxDomainCarriesSoa) {
  AuthFixture f;
  const auto resp = f.ask("missing.test");
  EXPECT_EQ(resp.header.rcode, Rcode::kNxDomain);
  ASSERT_EQ(resp.authorities.size(), 1u);
  EXPECT_EQ(resp.authorities[0].type, RrType::kSoa);
}

TEST(AuthServer, NoDataCarriesSoa) {
  AuthFixture f;
  const auto resp = f.ask("www.test", RrType::kAaaa);
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.answers.empty());
  ASSERT_EQ(resp.authorities.size(), 1u);
  EXPECT_EQ(resp.authorities[0].type, RrType::kSoa);
}

TEST(AuthServer, DelegationIsNonAuthoritativeWithGlue) {
  AuthFixture f;
  const auto resp = f.ask("deep.child.test");
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_FALSE(resp.header.aa);
  ASSERT_EQ(resp.authorities.size(), 1u);
  EXPECT_EQ(resp.authorities[0].type, RrType::kNs);
  ASSERT_EQ(resp.additionals.size(), 1u);
}

TEST(AuthServer, RefusedOutOfZone) {
  AuthFixture f;
  EXPECT_EQ(f.ask("other.example").header.rcode, Rcode::kRefused);
}

TEST(AuthServer, TruncatesUdpUnderTcSuffix) {
  AuthFixture f;
  const auto udp_resp = f.ask("probe.tcp.test");
  EXPECT_TRUE(udp_resp.header.tc);
  EXPECT_TRUE(udp_resp.answers.empty());
  // Over TCP the truncation hack is bypassed and the zone answers normally.
  const auto tcp_resp = f.ask("probe.tcp.test", RrType::kA, /*tcp=*/true);
  EXPECT_FALSE(tcp_resp.header.tc);
  EXPECT_EQ(tcp_resp.header.rcode, Rcode::kNxDomain);
}

TEST(AuthServer, LogsUdpQueries) {
  AuthFixture f;
  const auto query = dns::make_query(7, DnsName::must_parse("www.test"),
                                     RrType::kA);
  f.network.send(net::make_udp(IpAddr::must_parse("31.0.0.9"), 4242,
                               IpAddr::must_parse("30.0.0.1"), 53,
                               query.encode()),
                 2);
  f.loop.run();
  ASSERT_EQ(f.auth->log().size(), 1u);
  const auto& entry = f.auth->log().front();
  EXPECT_EQ(entry.client, IpAddr::must_parse("31.0.0.9"));
  EXPECT_EQ(entry.client_port, 4242);
  EXPECT_EQ(entry.qname, DnsName::must_parse("www.test"));
  EXPECT_FALSE(entry.tcp);
  EXPECT_FALSE(entry.syn.has_value());
  EXPECT_EQ(f.auth->queries_served(), 1u);
}

TEST(AuthServer, ObserverInvoked) {
  AuthFixture f;
  int observed = 0;
  f.auth->add_observer([&](const resolver::AuthLogEntry&) { ++observed; });
  const auto query = dns::make_query(7, DnsName::must_parse("www.test"),
                                     RrType::kA);
  f.network.send(net::make_udp(IpAddr::must_parse("31.0.0.9"), 4242,
                               IpAddr::must_parse("30.0.0.1"), 53,
                               query.encode()),
                 2);
  f.loop.run();
  EXPECT_EQ(observed, 1);
}

TEST(AuthServer, IgnoresGarbageAndResponses) {
  AuthFixture f;
  f.network.send(net::make_udp(IpAddr::must_parse("31.0.0.9"), 4242,
                               IpAddr::must_parse("30.0.0.1"), 53,
                               {0xDE, 0xAD}),
                 2);
  DnsMessage response = dns::make_response(
      dns::make_query(9, DnsName::must_parse("www.test"), RrType::kA),
      Rcode::kNoError);
  f.network.send(net::make_udp(IpAddr::must_parse("31.0.0.9"), 4242,
                               IpAddr::must_parse("30.0.0.1"), 53,
                               response.encode()),
                 2);
  f.loop.run();
  EXPECT_EQ(f.auth->log().size(), 0u);
}

TEST(AuthServer, LogCapRotates) {
  AuthFixture f2;
  resolver::AuthConfig config;
  config.max_log = 2;
  sim::Host host2(f2.network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
                  {IpAddr::must_parse("30.0.0.2")}, Rng(2), "auth2");
  resolver::AuthServer auth2(host2, config);
  for (int i = 0; i < 5; ++i) {
    const auto query = dns::make_query(
        static_cast<std::uint16_t>(i),
        DnsName::must_parse("q" + std::to_string(i) + ".test"), RrType::kA);
    f2.network.send(net::make_udp(IpAddr::must_parse("31.0.0.9"), 4242,
                                  IpAddr::must_parse("30.0.0.2"), 53,
                                  query.encode()),
                    2);
  }
  f2.loop.run();
  EXPECT_EQ(auth2.log().size(), 2u);
  EXPECT_EQ(auth2.queries_served(), 5u);
  // Per-packet jitter reorders arrivals; the retained entries are simply the
  // last two to arrive, whichever those were.
  for (const auto& entry : auth2.log()) {
    EXPECT_TRUE(entry.qname.is_subdomain_of(DnsName::must_parse("test")));
  }
}

TEST(TcpFraming, RoundTrip) {
  const auto query = dns::make_query(7, DnsName::must_parse("a.test"),
                                     dns::RrType::kA, false);
  const cd::GatherBuf framed = resolver::tcp_frame_pooled(query);
  const std::vector<std::uint8_t> body = query.encode();
  // Zero-copy gather view: 2-byte BE length prefix inline, pooled body.
  ASSERT_EQ(framed.header_len, 2u);
  EXPECT_EQ(framed.header[0], static_cast<std::uint8_t>(body.size() >> 8));
  EXPECT_EQ(framed.header[1], static_cast<std::uint8_t>(body.size()));
  EXPECT_EQ(framed.body, body);
  EXPECT_EQ(framed.size(), body.size() + 2);
  // The coalesced wire form round-trips through both unframe flavours.
  const std::vector<std::uint8_t> wire = framed.to_vector();
  EXPECT_EQ(resolver::tcp_unframe(wire), body);
  const auto view = resolver::tcp_unframe_view(wire);
  EXPECT_TRUE(std::equal(view.begin(), view.end(), body.begin(), body.end()));
}

TEST(TcpFraming, RejectsBadInput) {
  EXPECT_THROW((void)resolver::tcp_unframe(std::vector<std::uint8_t>{0}),
               ParseError);
  EXPECT_THROW((void)resolver::tcp_unframe(std::vector<std::uint8_t>{0, 9, 1}),
               ParseError);
  EXPECT_THROW(
      (void)resolver::tcp_unframe_view(std::vector<std::uint8_t>{0, 9, 1}),
      ParseError);
}

}  // namespace
