// Unit + integration tests: streaming MSS-segmented TCP — stream
// reassembly, segmentation caps at the peer's SYN-advertised MSS,
// deterministic connection teardown (no stray timeout events), the
// truncated-mid-stream timeout path, and the differential proving
// segmented exchanges byte-identical to the single-buffer baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <tuple>
#include <vector>

#include "core/parallel.h"
#include "ditl/world.h"
#include "net/packet.h"
#include "sim/host.h"
#include "sim/network.h"
#include "util/pcap.h"
#include "util/rng.h"

namespace {

using namespace cd;
using net::IpAddr;
using net::Packet;
using sim::Host;
using sim::Network;
using sim::TcpReassembly;

/// Every OS profile used below advertises this MSS in its SYN options
/// (asserted in the first segmentation test so a table change is loud).
constexpr std::uint16_t kMss = 1460;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t salt = 0) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(salt + i * 7 + (i >> 8));
  }
  return v;
}

std::span<const std::uint8_t> sub(const std::vector<std::uint8_t>& v,
                                  std::size_t off, std::size_t len) {
  return std::span<const std::uint8_t>(v).subspan(off, len);
}

/// A 2-byte big-endian length prefix over `body`, gather-framed the way the
/// resolver frames DNS-over-TCP messages.
cd::GatherBuf framed(std::vector<std::uint8_t> body) {
  cd::GatherBuf g(std::move(body));
  const std::uint8_t prefix[2] = {
      static_cast<std::uint8_t>(g.body.size() >> 8),
      static_cast<std::uint8_t>(g.body.size())};
  g.set_header(prefix);
  return g;
}

// --- TcpReassembly ---------------------------------------------------------

TEST(TcpReassemblyTest, InOrderCompletes) {
  TcpReassembly rx;
  const auto data = pattern(10);
  EXPECT_TRUE(rx.add(0, sub(data, 0, 4), false));
  EXPECT_FALSE(rx.complete());
  EXPECT_TRUE(rx.add(4, sub(data, 4, 6), true));
  ASSERT_TRUE(rx.complete());
  EXPECT_EQ(rx.total(), 10u);
  EXPECT_EQ(rx.take(), data);
}

TEST(TcpReassemblyTest, OutOfOrderOverlapAndDuplicates) {
  const auto data = pattern(9, 3);
  TcpReassembly rx;
  // Tail first (fixes the total), then a middle duplicate pair, then a head
  // segment overlapping the middle — the assembled stream is still exact.
  EXPECT_TRUE(rx.add(6, sub(data, 6, 3), true));
  EXPECT_FALSE(rx.complete());
  EXPECT_TRUE(rx.add(3, sub(data, 3, 3), false));
  EXPECT_TRUE(rx.add(3, sub(data, 3, 3), false));
  EXPECT_FALSE(rx.complete());
  EXPECT_TRUE(rx.add(0, sub(data, 0, 5), false));
  ASSERT_TRUE(rx.complete());
  EXPECT_EQ(rx.take(), data);
}

TEST(TcpReassemblyTest, RangeTableOverflowDropsSegment) {
  TcpReassembly rx;
  const auto data = pattern(64);
  // kMaxRanges disjoint one-byte islands fill the inline table...
  for (std::size_t i = 0; i < TcpReassembly::kMaxRanges; ++i) {
    EXPECT_TRUE(rx.add(i * 4, sub(data, i * 4, 1), false));
  }
  // ...a further disjoint island is dropped (stream will stall into the
  // connection timeout), but a segment that merges into an existing range
  // still lands.
  EXPECT_FALSE(rx.add(60, sub(data, 60, 1), false));
  EXPECT_TRUE(rx.add(0, sub(data, 0, 2), false));
  rx.discard();
}

TEST(TcpReassemblyTest, RejectsOversizedAndInconsistentSegments) {
  TcpReassembly rx;
  const auto data = pattern(4);
  EXPECT_FALSE(
      rx.add(TcpReassembly::kMaxStreamBytes, sub(data, 0, 4), false));
  EXPECT_TRUE(rx.add(0, sub(data, 0, 4), true));  // total fixed at 4
  EXPECT_FALSE(rx.add(4, sub(data, 0, 4), false));  // beyond the total
  EXPECT_FALSE(rx.add(0, sub(data, 0, 3), true));   // conflicting total
  ASSERT_TRUE(rx.complete());
  EXPECT_EQ(rx.take(), data);
}

// --- segmentation against a live host pair ---------------------------------

struct TcpFixture {
  sim::EventLoop loop;
  sim::Topology topology;
  Network network;
  std::optional<Host> client;
  std::optional<Host> server;
  IpAddr caddr = IpAddr::must_parse("21.0.0.5");
  IpAddr saddr = IpAddr::must_parse("22.0.0.1");

  explicit TcpFixture(std::uint64_t seed = 7)
      : network(topology, loop, Rng(seed)) {
    topology.add_as(1);
    topology.add_as(2);
    topology.announce(1, net::Prefix::must_parse("21.0.0.0/16"));
    topology.announce(2, net::Prefix::must_parse("22.0.0.0/16"));
    client.emplace(network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
                   std::vector<IpAddr>{caddr}, Rng(seed + 1));
    server.emplace(network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
                   std::vector<IpAddr>{saddr}, Rng(seed + 2));
  }
};

struct Seg {
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// Data segments (TCP, non-SYN, non-empty payload) from `from` to `to`,
/// sorted by sequence number.
std::vector<Seg> data_segments(const pcap::Capture& capture,
                               const IpAddr& from, const IpAddr& to) {
  std::vector<Seg> segs;
  for (const auto& rec : capture.records) {
    const Packet pkt = Packet::parse(rec.bytes);
    if (pkt.proto != net::IpProto::kTcp || pkt.payload.empty()) continue;
    if (!(pkt.src == from) || !(pkt.dst == to)) continue;
    if (pkt.tcp_flags.syn) continue;
    segs.push_back({pkt.tcp_seq, pkt.payload});
  }
  std::sort(segs.begin(), segs.end(),
            [](const Seg& a, const Seg& b) { return a.seq < b.seq; });
  return segs;
}

/// One exchange where the server answers with `resp_size` patterned bytes;
/// returns the captured server->client data segments and the client's
/// reassembled reply.
void exchange_sized(std::size_t resp_size, std::vector<Seg>& segs,
                    std::vector<std::uint8_t>& reply) {
  TcpFixture f;
  const auto body = pattern(resp_size, 0x5A);
  f.server->tcp_listen(
      53, [&body](const sim::TcpConnInfo&, std::span<const std::uint8_t>) {
        return cd::GatherBuf(body);
      });
  pcap::Capture capture;
  f.network.attach_capture(capture);
  std::optional<std::vector<std::uint8_t>> r;
  f.client->tcp_connect(f.caddr, f.saddr, 53,
                        std::vector<std::uint8_t>{1, 2, 3},
                        [&r](auto x) { r = std::move(x); });
  f.loop.run();
  ASSERT_TRUE(r.has_value());
  reply = std::move(*r);
  segs = data_segments(capture, f.saddr, f.caddr);
  EXPECT_EQ(f.client->open_tcp_connections(), 0u);
  EXPECT_EQ(f.server->open_tcp_connections(), 0u);
}

TEST(TcpSegmentation, ResponseExactlyAtMssIsOneSegment) {
  // The segmentation cap is the *client's* SYN-advertised MSS.
  ASSERT_EQ(sim::os_profile(sim::OsId::kUbuntu1904).fp.mss, kMss);
  std::vector<Seg> segs;
  std::vector<std::uint8_t> reply;
  exchange_sized(kMss, segs, reply);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].payload.size(), kMss);
  EXPECT_EQ(reply, pattern(kMss, 0x5A));
}

TEST(TcpSegmentation, ResponseOneByteOverMssSplitsInTwo) {
  std::vector<Seg> segs;
  std::vector<std::uint8_t> reply;
  exchange_sized(kMss + 1, segs, reply);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].payload.size(), kMss);
  EXPECT_EQ(segs[1].payload.size(), 1u);
  // Sequence numbers advance by actual payload bytes.
  EXPECT_EQ(segs[1].seq, segs[0].seq + kMss);
  EXPECT_EQ(reply, pattern(kMss + 1, 0x5A));
}

TEST(TcpSegmentation, MultiSegmentStreamConcatenatesToFramedResponse) {
  TcpFixture f;
  const cd::GatherBuf resp = framed(pattern(8000, 0x11));
  const std::vector<std::uint8_t> expected = resp.to_vector();
  f.server->tcp_listen(
      53, [&resp](const sim::TcpConnInfo&, std::span<const std::uint8_t>) {
        return resp;
      });
  pcap::Capture capture;
  f.network.attach_capture(capture);
  std::optional<std::vector<std::uint8_t>> r;
  f.client->tcp_connect(f.caddr, f.saddr, 53,
                        std::vector<std::uint8_t>{0, 2, 0xAB, 0xCD},
                        [&r](auto x) { r = std::move(x); });
  f.loop.run();

  // The client's reassembled stream is byte-identical to the framed
  // response (length prefix + body crossing six segment boundaries).
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, expected);

  // On the wire: every segment's payload is capped at the advertised MSS,
  // sequence numbers are contiguous, and concatenating the captured
  // payloads in sequence order reproduces the stream exactly.
  const auto segs = data_segments(capture, f.saddr, f.caddr);
  ASSERT_EQ(segs.size(), (expected.size() + kMss - 1) / kMss);
  std::vector<std::uint8_t> concat;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_LE(segs[i].payload.size(), kMss);
    if (i > 0) {
      EXPECT_EQ(segs[i].seq,
                segs[i - 1].seq +
                    static_cast<std::uint32_t>(segs[i - 1].payload.size()));
    }
    concat.insert(concat.end(), segs[i].payload.begin(),
                  segs[i].payload.end());
  }
  EXPECT_EQ(concat, expected);
}

// --- deterministic teardown / timeout accounting ----------------------------

struct ExchangeOutcome {
  std::uint64_t executed = 0;
  int replies = 0;
};

/// One full exchange with the given client timeout; asserts clean teardown
/// and returns the event-loop accounting for cross-run comparison.
ExchangeOutcome run_exchange_with_timeout(sim::SimTime timeout,
                                          std::uint64_t budget = UINT64_MAX) {
  TcpFixture f(11);
  f.server->tcp_listen(
      53, [](const sim::TcpConnInfo&, std::span<const std::uint8_t> req) {
        return cd::GatherBuf(
            std::vector<std::uint8_t>(req.begin(), req.end()));
      });
  ExchangeOutcome out;
  f.client->tcp_connect(f.caddr, f.saddr, 53,
                        std::vector<std::uint8_t>{9, 9, 9},
                        [&out](auto r) {
                          if (r.has_value()) ++out.replies;
                        },
                        timeout);
  f.loop.run(budget);
  EXPECT_EQ(out.replies, 1);
  EXPECT_EQ(f.client->open_tcp_connections(), 0u);
  EXPECT_EQ(f.server->open_tcp_connections(), 0u);
  EXPECT_EQ(f.loop.pending(), 0u);
  out.executed = f.loop.executed();
  return out;
}

TEST(TcpTeardown, NoStrayTimeoutAndStableEventAccounting) {
  // A successful exchange cancels the client's timeout and erases the
  // connection entry on the spot: the executed-event count must not depend
  // on the timeout value (the cancelled timer never runs, never counts).
  const ExchangeOutcome a = run_exchange_with_timeout(5 * sim::kSecond);
  const ExchangeOutcome b = run_exchange_with_timeout(3600 * sim::kSecond);
  EXPECT_EQ(a.executed, b.executed);
  // And the exchange fits in exactly that many events: a stray timeout
  // would exceed the budget and throw InvariantError.
  EXPECT_NO_THROW(run_exchange_with_timeout(5 * sim::kSecond, a.executed));
}

TEST(TcpTimeout, TruncatedMidStreamTimesOut) {
  TcpFixture f(13);
  // Nobody owns 22.0.0.9 — the test plays that server by hand, injecting a
  // handshake and then a deliberately truncated response stream.
  const IpAddr fake = IpAddr::must_parse("22.0.0.9");

  std::optional<Packet> syn;
  bool injected = false;
  f.network.add_tap([&](const Packet& pkt, sim::DropReason, sim::SimTime now) {
    if (!(pkt.src == f.caddr) || pkt.proto != net::IpProto::kTcp) return;
    if (pkt.tcp_flags.syn) {
      syn = pkt;
      return;
    }
    if (!pkt.payload.empty() && pkt.tcp_flags.psh && !injected) {
      injected = true;
      // The client finished streaming its request: answer with the first
      // and last kilobyte of a 3000-byte stream — the middle never comes.
      f.loop.schedule_at(
          now + 50 * sim::kMillisecond, [&f, &fake, sport = pkt.src_port] {
            const auto chunk = pattern(1000, 0x77);
            Packet head = net::make_tcp(fake, 53, f.caddr, sport,
                                        net::TcpFlags{.ack = true}, chunk);
            head.tcp_seq = 5000 + 1;
            f.network.send(std::move(head), 2);
            Packet tail =
                net::make_tcp(fake, 53, f.caddr, sport,
                              net::TcpFlags{.ack = true, .psh = true}, chunk);
            tail.tcp_seq = 5000 + 1 + 2000;
            f.network.send(std::move(tail), 2);
          });
    }
  });

  std::optional<std::optional<std::vector<std::uint8_t>>> result;
  f.client->tcp_connect(f.caddr, fake, 53, std::vector<std::uint8_t>{1, 2, 3},
                        [&result](auto r) { result = std::move(r); },
                        2 * sim::kSecond);
  // The SYN went out synchronously; complete the handshake so the client
  // streams its request and waits on the (truncated) reply.
  ASSERT_TRUE(syn.has_value());
  Packet synack = net::make_tcp(fake, 53, f.caddr, syn->src_port,
                                net::TcpFlags{.syn = true, .ack = true});
  synack.tcp_seq = 5000;
  synack.tcp_ack = syn->tcp_seq + 1;
  synack.tcp_options = {{net::TcpOptionKind::kMss, 1400}};
  f.network.send(std::move(synack), 2);
  f.loop.run();

  EXPECT_TRUE(injected);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value()) << "partial stream must time out";
  EXPECT_EQ(f.client->open_tcp_connections(), 0u);
}

// --- differential: segmented vs single-buffer baseline ----------------------

struct DiffOutcome {
  std::vector<std::uint8_t> reply;
  std::vector<std::uint8_t> concat;
  std::vector<std::uint8_t> expected;
};

DiffOutcome run_framed_exchange(std::uint64_t seed, bool single_buffer) {
  TcpFixture f(seed);
  f.network.set_tcp_single_buffer(single_buffer);
  const cd::GatherBuf resp =
      framed(pattern(4000 + seed % 700, static_cast<std::uint8_t>(seed)));
  DiffOutcome out;
  out.expected = resp.to_vector();
  f.server->tcp_listen(
      53, [&resp](const sim::TcpConnInfo&, std::span<const std::uint8_t>) {
        return resp;
      });
  pcap::Capture capture;
  f.network.attach_capture(capture);
  std::optional<std::vector<std::uint8_t>> r;
  f.client->tcp_connect(f.caddr, f.saddr, 53,
                        std::vector<std::uint8_t>{0, 2, 0xAB, 0xCD},
                        [&r](auto x) { r = std::move(x); });
  f.loop.run();
  EXPECT_TRUE(r.has_value());
  if (r.has_value()) out.reply = std::move(*r);
  for (const Seg& s : data_segments(capture, f.saddr, f.caddr)) {
    EXPECT_LE(s.payload.size(), single_buffer ? out.expected.size() : kMss);
    out.concat.insert(out.concat.end(), s.payload.begin(), s.payload.end());
  }
  return out;
}

TEST(TcpDifferential, SegmentedMatchesSingleBufferAcrossSeeds) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const DiffOutcome seg = run_framed_exchange(seed, /*single_buffer=*/false);
    const DiffOutcome one = run_framed_exchange(seed, /*single_buffer=*/true);
    // Both modes reassemble to the exact framed response, and the captured
    // payload bytes concatenate to the same stream either way.
    EXPECT_EQ(seg.reply, seg.expected) << "seed " << seed;
    EXPECT_EQ(one.reply, one.expected) << "seed " << seed;
    EXPECT_EQ(seg.concat, seg.expected) << "seed " << seed;
    EXPECT_EQ(one.concat, one.expected) << "seed " << seed;
  }
}

// --- campaign level ----------------------------------------------------------

core::ExperimentConfig diff_config(bool segmentation) {
  core::ExperimentConfig config;
  core::CaptureSpec capture;
  capture.include_drops = true;
  config.capture = capture;
  config.tcp_segmentation = segmentation;
  return config;
}

ditl::WorldSpec diff_spec(std::uint64_t seed) {
  ditl::WorldSpec spec = ditl::small_world_spec();
  spec.n_asns = 6;
  spec.seed = seed;
  return spec;
}

TEST(TcpDifferential, CampaignEvidenceInvariantAcrossSegmentationModes) {
  // Scan evidence must not depend on how DNS-over-TCP responses are cut
  // into segments: results_digest (which ignores timestamps and wire
  // artifacts) is equal with segmentation on and off, seed by seed.
  for (const std::uint64_t seed : {7ULL, 42ULL, 99ULL}) {
    const auto on = core::run_sharded_experiment(diff_spec(seed),
                                                 diff_config(true));
    const auto off = core::run_sharded_experiment(diff_spec(seed),
                                                  diff_config(false));
    EXPECT_EQ(core::results_digest(on.merged),
              core::results_digest(off.merged))
        << "seed " << seed;
  }
}

TEST(TcpDifferential, CampaignEvidenceInvariantAcrossEventEngines) {
  // The wheel-vs-oracle axis over the TCP-heavy campaign: with segmentation
  // on (every TC=1 retry exercises handshake timers, per-segment delivery
  // events and teardown cancellations), both event engines must produce
  // byte-identical evidence AND wire bytes, across seeds and shard counts.
  for (const std::uint64_t seed : {7ULL, 42ULL, 99ULL, 1337ULL, 2020ULL}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      core::ExperimentConfig wheel_config = diff_config(true);
      wheel_config.num_shards = shards;
      wheel_config.num_threads = shards > 1 ? 2 : 1;
      core::ExperimentConfig oracle_config = wheel_config;
      oracle_config.wheel_event_core = false;

      const auto wheel =
          core::run_sharded_experiment(diff_spec(seed), wheel_config);
      const auto oracle =
          core::run_sharded_experiment(diff_spec(seed), oracle_config);
      EXPECT_EQ(core::results_digest(wheel.merged),
                core::results_digest(oracle.merged))
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(core::capture_digest(wheel.merged.capture),
                core::capture_digest(oracle.merged.capture))
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(wheel.merged.capture.to_pcap(),
                oracle.merged.capture.to_pcap())
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(TcpSegmentation, NoCampaignSegmentExceedsAdvertisedMss) {
  // Over a full captured campaign (TC=1 elicitation drives real
  // DNS-over-TCP): every TCP data segment from A to B is capped at the MSS
  // that B advertised on that connection's SYN or SYN-ACK.
  const auto sharded =
      core::run_sharded_experiment(diff_spec(42), diff_config(true));
  const pcap::Capture& capture = sharded.merged.capture;

  using FlowKey = std::tuple<IpAddr, std::uint16_t, IpAddr, std::uint16_t>;
  std::map<FlowKey, std::uint32_t> advertised;  // (advertiser, peer) -> MSS
  for (const auto& rec : capture.records) {
    const Packet pkt = Packet::parse(rec.bytes);
    if (pkt.proto != net::IpProto::kTcp || !pkt.tcp_flags.syn) continue;
    for (const net::TcpOption& o : pkt.tcp_options) {
      if (o.kind == net::TcpOptionKind::kMss && o.value != 0) {
        advertised[{pkt.src, pkt.src_port, pkt.dst, pkt.dst_port}] = o.value;
      }
    }
  }

  std::size_t data_records = 0;
  for (const auto& rec : capture.records) {
    const Packet pkt = Packet::parse(rec.bytes);
    if (pkt.proto != net::IpProto::kTcp || pkt.tcp_flags.syn ||
        pkt.payload.empty()) {
      continue;
    }
    ++data_records;
    const auto it = advertised.find(
        {pkt.dst, pkt.dst_port, pkt.src, pkt.src_port});
    ASSERT_NE(it, advertised.end())
        << "TCP data segment with no reverse SYN in the capture";
    EXPECT_LE(pkt.payload.size(), it->second);
  }
  EXPECT_GT(data_records, 0u) << "campaign produced no DNS-over-TCP data";
}

}  // namespace
