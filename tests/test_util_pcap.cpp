// Unit tests for the pcap subsystem: header/record encode-decode, the
// writer→reader→writer byte-identity property under randomized input, a
// truncation-prefix fuzzer (every strict prefix of a valid capture+index
// pair must throw cd::ParseError — mirroring test_util_bytes), a bit-flip
// fuzzer, malformed-input regressions, and canonical-merge properties.
// Run under ASan by scripts/ci.sh (label "pcap").
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "net/packet.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/pcap.h"
#include "util/rng.h"

namespace {

using namespace cd;
using net::IpAddr;
using net::Packet;
using pcap::Capture;
using pcap::PcapRecord;

PcapRecord record(std::int64_t time_us, std::vector<std::uint8_t> bytes,
                  std::uint8_t annotation = 0) {
  PcapRecord rec;
  rec.time_us = time_us;
  rec.orig_len = static_cast<std::uint32_t>(bytes.size());
  rec.annotation = annotation;
  rec.bytes = std::move(bytes);
  return rec;
}

Capture random_capture(Rng& rng, std::size_t n_records) {
  Capture capture;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n_records; ++i) {
    t += static_cast<std::int64_t>(rng.uniform(2'000'000));
    std::vector<std::uint8_t> bytes(20 + rng.uniform(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.u64());
    capture.records.push_back(
        record(t, std::move(bytes), static_cast<std::uint8_t>(rng.uniform(8))));
  }
  return capture;
}

// --- header/record encode-decode --------------------------------------------

TEST(PcapHeader, EncodesClassicLittleEndianHeader) {
  Capture capture;
  capture.snaplen = 0x1234;
  const auto bytes = capture.to_pcap();
  ASSERT_EQ(bytes.size(), pcap::kFileHeaderSize);
  // magic 0xA1B2C3D4 stored little-endian.
  EXPECT_EQ(bytes[0], 0xD4);
  EXPECT_EQ(bytes[1], 0xC3);
  EXPECT_EQ(bytes[2], 0xB2);
  EXPECT_EQ(bytes[3], 0xA1);
  EXPECT_EQ(bytes[4], 2);  // version 2.4
  EXPECT_EQ(bytes[6], 4);
  EXPECT_EQ(bytes[16], 0x34);  // snaplen LE
  EXPECT_EQ(bytes[17], 0x12);
  EXPECT_EQ(bytes[20], 101);  // LINKTYPE_RAW
}

TEST(PcapHeader, RecordTimestampSplitsSimTime) {
  Capture capture;
  capture.records.push_back(record(3'000'042, {0xAB, 0xCD}));
  const auto bytes = capture.to_pcap();
  ASSERT_EQ(bytes.size(), pcap::kFileHeaderSize + pcap::kRecordHeaderSize + 2);
  ByteReader r(std::span<const std::uint8_t>(bytes).subspan(
                   pcap::kFileHeaderSize),
               "test");
  EXPECT_EQ(r.u32le(), 3u);       // ts_sec
  EXPECT_EQ(r.u32le(), 42u);      // ts_usec
  EXPECT_EQ(r.u32le(), 2u);       // incl_len
  EXPECT_EQ(r.u32le(), 2u);       // orig_len
  EXPECT_EQ(r.u8(), 0xAB);
}

TEST(PcapRoundTrip, EmptyCapture) {
  Capture capture;
  const Capture back =
      Capture::parse(capture.to_pcap(), capture.to_index());
  EXPECT_EQ(back, capture);
}

TEST(PcapRoundTrip, PreservesRecordsAndAnnotations) {
  Capture capture;
  capture.records.push_back(record(0, {1, 2, 3}, 0));
  capture.records.push_back(record(1'500'000, {4, 5}, 6));
  const Capture back = Capture::parse(capture.to_pcap(), capture.to_index());
  EXPECT_EQ(back, capture);
}

TEST(PcapRoundTrip, SnaplenTruncatesButKeepsOrigLen) {
  Capture capture;
  capture.snaplen = 4;
  capture.records.push_back(record(10, {1, 2, 3, 4, 5, 6, 7, 8}));
  const auto wire = capture.to_pcap();
  const Capture back = Capture::parse(wire, capture.to_index());
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_EQ(back.records[0].bytes, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(back.records[0].orig_len, 8u);
  // Re-serializing the snapped capture is byte-identical: orig_len survives.
  EXPECT_EQ(back.to_pcap(), wire);
  EXPECT_EQ(back.to_index(), capture.to_index());
}

// --- writer→reader→writer fuzz ----------------------------------------------

TEST(PcapFuzz, WriterReaderWriterIsByteIdentical) {
  Rng rng(0x9CA9);
  for (int i = 0; i < 100; ++i) {
    const Capture capture = random_capture(rng, rng.uniform(20));
    const auto wire = capture.to_pcap();
    const auto index = capture.to_index();
    const Capture back = Capture::parse(wire, index);
    ASSERT_EQ(back.to_pcap(), wire) << "iteration " << i;
    ASSERT_EQ(back.to_index(), index) << "iteration " << i;
    ASSERT_EQ(back, capture) << "iteration " << i;
  }
}

TEST(PcapFuzz, RealPacketsRoundTripThroughCapture) {
  // Capture bytes are genuine LINKTYPE_RAW wire bytes: Packet::parse must
  // reconstruct every record, and re-serialization must match the capture.
  Rng rng(0xCAB7);
  Capture capture;
  for (int i = 0; i < 50; ++i) {
    const bool v4 = rng.chance(0.5);
    std::vector<std::uint8_t> payload(rng.uniform(64));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.u64());
    const IpAddr src = v4 ? IpAddr::v4(static_cast<std::uint32_t>(rng.u64()))
                          : IpAddr::v6(rng.u64(), rng.u64());
    const IpAddr dst = v4 ? IpAddr::v4(static_cast<std::uint32_t>(rng.u64()))
                          : IpAddr::v6(rng.u64(), rng.u64());
    const Packet pkt = net::make_udp(
        src, static_cast<std::uint16_t>(rng.u64()), dst,
        static_cast<std::uint16_t>(rng.u64()), std::move(payload));
    capture.records.push_back(record(i * 1000, pkt.serialize()));
  }
  const Capture back = Capture::parse(capture.to_pcap(), capture.to_index());
  ASSERT_EQ(back.records.size(), capture.records.size());
  for (std::size_t i = 0; i < back.records.size(); ++i) {
    const Packet pkt = Packet::parse(back.records[i].bytes);
    EXPECT_EQ(pkt.serialize(), capture.records[i].bytes) << "record " << i;
  }
}

// --- truncation-prefix fuzz -------------------------------------------------

TEST(PcapTruncationFuzz, EveryStrictPcapPrefixThrows) {
  // With the sidecar index held fixed, a pcap cut at ANY byte — including
  // exactly at a record boundary, where the bare format is self-consistent —
  // must raise ParseError. This is the property that makes capture files
  // auditable: corruption cannot silently shorten the evidence.
  Rng rng(0x7C45);
  for (int i = 0; i < 20; ++i) {
    const Capture capture = random_capture(rng, 1 + rng.uniform(6));
    const auto wire = capture.to_pcap();
    const auto index = capture.to_index();
    for (std::size_t len = 0; len < wire.size(); ++len) {
      ASSERT_THROW(Capture::parse(std::span(wire).first(len), index),
                   ParseError)
          << "pcap prefix of length " << len << " of " << wire.size();
    }
  }
}

TEST(PcapTruncationFuzz, EveryStrictIndexPrefixThrows) {
  Rng rng(0x1D39);
  const Capture capture = random_capture(rng, 5);
  const auto wire = capture.to_pcap();
  const auto index = capture.to_index();
  for (std::size_t len = 0; len < index.size(); ++len) {
    ASSERT_THROW(Capture::parse(wire, std::span(index).first(len)), ParseError)
        << "index prefix of length " << len << " of " << index.size();
  }
}

TEST(PcapTruncationFuzz, BarePcapPrefixesThrowExceptAtRecordBoundaries) {
  // The standard format carries no record count, so a prefix ending exactly
  // where a record ends IS a valid (shorter) capture — document that, and
  // require ParseError everywhere else. The sidecar index exists precisely
  // to close this gap.
  Rng rng(0xB0DA);
  const Capture capture = random_capture(rng, 4);
  const auto wire = capture.to_pcap();
  std::vector<std::size_t> boundaries{pcap::kFileHeaderSize};
  for (const PcapRecord& rec : capture.records) {
    boundaries.push_back(boundaries.back() + pcap::kRecordHeaderSize +
                         rec.bytes.size());
  }
  std::size_t parsed_ok = 0;
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const bool boundary =
        std::find(boundaries.begin(), boundaries.end(), len) !=
        boundaries.end();
    if (boundary) {
      const Capture prefix = pcap::parse_pcap(std::span(wire).first(len));
      EXPECT_LT(prefix.records.size(), capture.records.size());
      ++parsed_ok;
    } else {
      ASSERT_THROW(pcap::parse_pcap(std::span(wire).first(len)), ParseError)
          << "prefix of length " << len;
    }
  }
  EXPECT_EQ(parsed_ok, capture.records.size());  // header + all but last
}

// --- bit-flip fuzz ----------------------------------------------------------

TEST(PcapBitFlipFuzz, MutationsParseOrThrowParseError) {
  // A flipped bit must never crash, over-read (ASan), or raise anything but
  // ParseError.
  Rng rng(0xF11F);
  for (int i = 0; i < 300; ++i) {
    const Capture capture = random_capture(rng, 1 + rng.uniform(4));
    auto wire = capture.to_pcap();
    auto index = capture.to_index();
    const std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t j = 0; j < flips; ++j) {
      if (rng.chance(0.7) && !wire.empty()) {
        wire[rng.uniform(wire.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform(8));
      } else {
        index[rng.uniform(index.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform(8));
      }
    }
    try {
      (void)Capture::parse(wire, index);
    } catch (const ParseError&) {
      // expected for most mutations; anything else fails the test
    }
  }
}

// --- malformed-input regressions --------------------------------------------

TEST(PcapMalformed, BadMagic) {
  Capture capture;
  auto wire = capture.to_pcap();
  wire[3] = 0x00;
  EXPECT_THROW(pcap::parse_pcap(wire), ParseError);
}

TEST(PcapMalformed, SwappedAndNanosecondMagicsRejected) {
  Capture capture;
  auto wire = capture.to_pcap();
  // Byte-swapped classic magic (a big-endian writer's file).
  wire[0] = 0xA1;
  wire[1] = 0xB2;
  wire[2] = 0xC3;
  wire[3] = 0xD4;
  EXPECT_THROW(pcap::parse_pcap(wire), ParseError);
  // Nanosecond-resolution magic.
  wire[0] = 0x4D;
  wire[1] = 0x3C;
  wire[2] = 0xB2;
  wire[3] = 0xA1;
  EXPECT_THROW(pcap::parse_pcap(wire), ParseError);
}

TEST(PcapMalformed, SnaplenZero) {
  Capture capture;
  auto wire = capture.to_pcap();
  for (int i = 16; i < 20; ++i) wire[i] = 0;
  EXPECT_THROW(pcap::parse_pcap(wire), ParseError);
}

TEST(PcapMalformed, RecordLengthPastEof) {
  Capture capture;
  capture.records.push_back(record(0, {1, 2, 3, 4}));
  auto wire = capture.to_pcap();
  // incl_len at offset 24+8: claim 200 bytes, only 4 follow.
  wire[pcap::kFileHeaderSize + 8] = 200;
  EXPECT_THROW(pcap::parse_pcap(wire), ParseError);
}

TEST(PcapMalformed, RecordLengthBeyondSnaplen) {
  Capture capture;
  capture.records.push_back(record(0, std::vector<std::uint8_t>(64, 7)));
  auto wire = capture.to_pcap();
  // Shrink the header snaplen below the record's incl_len.
  wire[16] = 8;
  wire[17] = 0;
  wire[18] = 0;
  wire[19] = 0;
  EXPECT_THROW(pcap::parse_pcap(wire), ParseError);
}

TEST(PcapMalformed, InclLenExceedsOrigLen) {
  Capture capture;
  capture.records.push_back(record(0, {1, 2, 3, 4}));
  auto wire = capture.to_pcap();
  // orig_len at offset 24+12: claim the packet was shorter than captured.
  wire[pcap::kFileHeaderSize + 12] = 2;
  EXPECT_THROW(pcap::parse_pcap(wire), ParseError);
}

TEST(PcapMalformed, IndexCountMismatch) {
  Capture capture;
  capture.records.push_back(record(0, {1, 2}));
  capture.records.push_back(record(5, {3, 4}));
  const auto wire = capture.to_pcap();
  Capture shorter = capture;
  shorter.records.pop_back();
  EXPECT_THROW(Capture::parse(wire, shorter.to_index()), ParseError);
}

TEST(PcapMalformed, IndexMetadataMismatch) {
  Capture capture;
  capture.records.push_back(record(7, {1, 2, 3}));
  Capture skewed = capture;
  skewed.records[0].time_us = 8;
  EXPECT_THROW(Capture::parse(capture.to_pcap(), skewed.to_index()),
               ParseError);
}

TEST(PcapMalformed, NonRawLinktypeRejectedByStrictParse) {
  Capture capture;
  capture.linktype = 1;  // LINKTYPE_ETHERNET
  const auto wire = capture.to_pcap();
  EXPECT_EQ(pcap::parse_pcap(wire).linktype, 1u);  // tolerant reader: fine
  EXPECT_THROW(Capture::parse(wire, capture.to_index()), ParseError);
}

// --- canonical merge --------------------------------------------------------

TEST(PcapMerge, CanonicalOrderIsPartitionInvariant) {
  // Splitting a capture into arbitrary parts and merging must reproduce the
  // canonicalized whole byte-for-byte — the property the sharded runner's
  // capture equivalence rests on.
  Rng rng(0x3E6E);
  Capture whole = random_capture(rng, 40);
  std::vector<Capture> parts(3);
  for (PcapRecord& rec : whole.records) {
    parts[rng.uniform(parts.size())].records.push_back(rec);
  }
  Capture canonical = whole;
  pcap::canonicalize(canonical);
  const Capture merged = pcap::merge_captures(std::move(parts));
  EXPECT_EQ(merged.to_pcap(), canonical.to_pcap());
  EXPECT_EQ(merged.to_index(), canonical.to_index());
}

TEST(PcapMerge, RejectsMismatchedSnaplen) {
  Capture a, b;
  b.snaplen = 128;
  std::vector<Capture> parts;
  parts.push_back(a);
  parts.push_back(b);
  EXPECT_THROW((void)pcap::merge_captures(std::move(parts)), Error);
}

// --- file I/O ---------------------------------------------------------------

TEST(PcapFiles, WriteReadRoundTrip) {
  Rng rng(0xF17E);
  const Capture capture = random_capture(rng, 8);
  const std::string path =
      ::testing::TempDir() + "/cd_pcap_roundtrip_test.pcap";
  pcap::write_capture(capture, path);
  const Capture back =
      Capture::parse(pcap::read_file(path), pcap::read_file(path + ".idx"));
  EXPECT_EQ(back, capture);
  std::remove(path.c_str());
  std::remove((path + ".idx").c_str());
}

TEST(PcapFiles, MissingFileThrows) {
  EXPECT_THROW((void)pcap::read_file("/nonexistent/cd-test.pcap"), Error);
}

}  // namespace
