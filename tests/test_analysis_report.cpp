// Tests: the one-call report renderer over a real experiment run.
#include <gtest/gtest.h>

#include "analysis/report.h"
#include "core/experiment.h"
#include "ditl/world.h"

namespace {

using namespace cd;

TEST(Report, RendersEverySectionFromRealRun) {
  auto world = ditl::generate_world(ditl::small_world_spec());
  core::Experiment experiment(*world, {});
  const auto& results = experiment.run();

  const std::string report = analysis::render_report(
      results.records, world->targets, world->geo, world->passive_capture,
      world->public_dns_addrs);

  for (const char* section :
       {"DSAV prevalence", "DSAV by country", "Spoofed-source categories",
        "Open vs. closed", "Forwarding", "Middlebox check",
        "Source-port ranges", "Zero source-port randomization",
        "Ineffective allocation", "Passive cross-check"}) {
    EXPECT_NE(report.find(section), std::string::npos) << section;
  }
  EXPECT_NE(report.find("IPv4"), std::string::npos);
  EXPECT_GT(report.size(), 1500u);
}

TEST(Report, OptionsDisableSections) {
  auto world = ditl::generate_world(ditl::small_world_spec());
  core::Experiment experiment(*world, {});
  const auto& results = experiment.run();

  analysis::ReportOptions options;
  options.countries = false;
  options.passive = false;
  const std::string report = analysis::render_report(
      results.records, world->targets, world->geo, world->passive_capture,
      world->public_dns_addrs, options);
  EXPECT_EQ(report.find("DSAV by country"), std::string::npos);
  EXPECT_EQ(report.find("Passive cross-check"), std::string::npos);
  EXPECT_NE(report.find("DSAV prevalence"), std::string::npos);
}

TEST(Report, PureFunctionOfInputs) {
  auto world = ditl::generate_world(ditl::small_world_spec());
  core::Experiment experiment(*world, {});
  const auto& results = experiment.run();
  const auto render = [&] {
    return analysis::render_report(results.records, world->targets,
                                   world->geo, world->passive_capture,
                                   world->public_dns_addrs);
  };
  EXPECT_EQ(render(), render());
}

}  // namespace
