// Integration tests: prober + follow-up engine + experiment façade behaviour
// that the smoke test does not pin down.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "ditl/world.h"

namespace {

using namespace cd;

TEST(Followup, ExactlyOneBatteryPerTarget) {
  auto spec = ditl::small_world_spec();
  auto world = ditl::generate_world(spec);
  core::ExperimentConfig config;
  core::Experiment experiment(*world, config);
  const auto& results = experiment.run();

  std::size_t reachable = 0;
  for (const auto& [addr, rec] : results.records) {
    if (rec.reachable()) ++reachable;
  }
  EXPECT_EQ(results.followup_batteries, reachable);

  // Direct targets collect ~10 port samples per family: the 10 follow-ups,
  // plus up to a couple of delegation-walk queries that also land on our
  // authoritative servers before the referral is cached.
  for (const auto& [addr, rec] : results.records) {
    EXPECT_LE(rec.ports_v4.size(), 13u);
    EXPECT_LE(rec.ports_v6.size(), 13u);
  }
}

TEST(Followup, OpenHitImpliesReachable) {
  auto spec = ditl::small_world_spec();
  auto world = ditl::generate_world(spec);
  core::Experiment experiment(*world, {});
  const auto& results = experiment.run();
  for (const auto& [addr, rec] : results.records) {
    if (rec.open_hit) {
      // The open check only runs as part of a follow-up battery, which only
      // runs after a reachability hit.
      EXPECT_TRUE(rec.reachable());
      // And the planted truth agrees the resolver serves strangers.
      const auto it = world->truth_resolvers.find(addr);
      ASSERT_NE(it, world->truth_resolvers.end());
      EXPECT_TRUE(it->second.open);
    }
  }
}

TEST(Followup, ClosedVerdictMatchesTruth) {
  auto spec = ditl::small_world_spec();
  auto world = ditl::generate_world(spec);
  core::Experiment experiment(*world, {});
  const auto& results = experiment.run();
  std::size_t checked = 0;
  for (const auto& [addr, rec] : results.records) {
    if (!rec.reachable()) continue;
    const auto it = world->truth_resolvers.find(addr);
    if (it == world->truth_resolvers.end()) continue;
    // A QNAME-minimizing open resolver can fail the open check even though
    // it serves strangers: strict minimization halts on NXDOMAIN before the
    // full open-check name ever reaches our servers (§3.6.4's blind spot —
    // e.g. an open forward-first forwarder whose failover iteration
    // minimizes). The verdict invariant only holds for non-qmin truth.
    if (it->second.qmin) continue;
    ++checked;
    EXPECT_EQ(rec.open_hit, it->second.open) << addr.to_string();
  }
  EXPECT_GT(checked, 0u);
}

TEST(Experiment, RunIsIdempotent) {
  auto world = ditl::generate_world(ditl::small_world_spec());
  core::Experiment experiment(*world, {});
  const auto& first = experiment.run();
  const auto first_sent = first.queries_sent;
  const auto& second = experiment.run();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.queries_sent, first_sent);
}

TEST(Experiment, DeterministicAcrossRuns) {
  auto spec = ditl::small_world_spec();
  auto w1 = ditl::generate_world(spec);
  auto w2 = ditl::generate_world(spec);
  core::Experiment e1(*w1, {});
  core::Experiment e2(*w2, {});
  const auto& r1 = e1.run();
  const auto& r2 = e2.run();
  EXPECT_EQ(r1.queries_sent, r2.queries_sent);
  EXPECT_EQ(r1.records.size(), r2.records.size());
  for (const auto& [addr, rec] : r1.records) {
    const auto it = r2.records.find(addr);
    ASSERT_NE(it, r2.records.end());
    EXPECT_EQ(rec.sources_hit, it->second.sources_hit);
    EXPECT_EQ(rec.ports_v4, it->second.ports_v4);
  }
}

TEST(Experiment, AnalystInjectionProducesLifetimeExclusions) {
  auto spec = ditl::small_world_spec();
  spec.ids_fraction = 1.0;  // every AS watches
  auto world = ditl::generate_world(spec);

  core::ExperimentConfig config;
  scanner::AnalystConfig analyst;
  analyst.replay_probability = 0.05;
  analyst.max_replays = 200;
  config.analyst = analyst;
  core::Experiment experiment(*world, config);
  const auto& results = experiment.run();

  EXPECT_GT(results.analyst_replays, 0u);
  // Replays arrive hours late and are excluded by the 10s threshold.
  EXPECT_GT(results.collector_stats.excluded_lifetime, 0u);
  // And exclusion does not erase legitimate evidence: excluded targets that
  // also answered promptly remain in the records.
  EXPECT_FALSE(results.records.empty());
}

TEST(Experiment, WildcardWorldClosesQminGap) {
  auto spec = ditl::small_world_spec();
  spec.qmin_fraction = 0.3;  // flood the world with minimizers
  spec.qmin_strict_share = 1.0;
  auto nx_world = ditl::generate_world(spec);
  core::Experiment nx_exp(*nx_world, {});
  const auto& nx = nx_exp.run();

  spec.wildcard_answers = true;
  auto wc_world = ditl::generate_world(spec);
  core::Experiment wc_exp(*wc_world, {});
  const auto& wc = wc_exp.run();

  // NXDOMAIN world: strict minimizers leak only partial names. (The
  // wildcard world actually logs *more* partial entries — each minimization
  // step reaches us — but attribution, not entry count, is what §3.6.4 is
  // about.)
  EXPECT_GT(nx.collector_stats.qmin_partial, 0u);
  // Attribution is what improves: strictly-minimizing planted resolvers
  // appear in the records only when wildcards let the full name through.
  std::size_t nx_qmin_attributed = 0, wc_qmin_attributed = 0;
  for (const auto& [addr, rec] : nx.records) {
    const auto it = nx_world->truth_resolvers.find(addr);
    if (it != nx_world->truth_resolvers.end() && it->second.qmin &&
        rec.reachable()) {
      ++nx_qmin_attributed;
    }
  }
  for (const auto& [addr, rec] : wc.records) {
    const auto it = wc_world->truth_resolvers.find(addr);
    if (it != wc_world->truth_resolvers.end() && it->second.qmin &&
        rec.reachable()) {
      ++wc_qmin_attributed;
    }
  }
  EXPECT_GT(wc_qmin_attributed, nx_qmin_attributed);
}

TEST(Experiment, NetworkStatsAccountForAllSends) {
  auto world = ditl::generate_world(ditl::small_world_spec());
  core::Experiment experiment(*world, {});
  const auto& results = experiment.run();
  const auto& s = results.network_stats;
  EXPECT_EQ(s.sent, s.delivered + s.dropped_osav + s.dropped_dsav +
                        s.dropped_martian + s.dropped_urpf +
                        s.dropped_unrouted + s.dropped_no_host +
                        s.dropped_stack);
  EXPECT_GT(s.dropped_no_host, 0u);  // stale targets exist
  EXPECT_GT(s.dropped_dsav, 0u);     // filtering ASes exist
}

}  // namespace
