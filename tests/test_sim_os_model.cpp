// Unit tests: the OS stack registry (sim/os_model) — ephemeral-port pool
// bounds for every profile, registry lookup, Table 6 acceptance rules, and
// Host::ephemeral_port staying inside its OS-designated range.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/host.h"
#include "sim/network.h"
#include "sim/os_model.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace cd;
using net::IpAddr;
using net::Prefix;
using sim::OsFamily;
using sim::OsId;
using sim::OsProfile;

TEST(OsModel, EveryProfileHasSaneEphemeralPoolBounds) {
  const auto& registry = sim::all_os_profiles();
  ASSERT_FALSE(registry.empty());
  for (const OsProfile& p : registry) {
    EXPECT_LE(p.ephemeral_lo, p.ephemeral_hi) << p.name;
    // Inclusive range, computed without 16-bit overflow.
    EXPECT_EQ(p.ephemeral_pool_size(),
              static_cast<std::uint32_t>(p.ephemeral_hi) - p.ephemeral_lo + 1)
        << p.name;
    // No profile in the paper's lab set uses a degenerate pool, and none
    // allocates out of the well-known/system range.
    EXPECT_GE(p.ephemeral_pool_size(), 1024u) << p.name;
    EXPECT_GE(p.ephemeral_lo, 1024) << p.name;
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(sim::os_family_name(p.family).empty()) << p.name;
  }
}

TEST(OsModel, RegistryLookupRoundTripsAndIdsAreUnique) {
  std::set<OsId> seen;
  for (const OsProfile& p : sim::all_os_profiles()) {
    EXPECT_TRUE(seen.insert(p.id).second) << p.name << ": duplicate OsId";
    const OsProfile& looked_up = sim::os_profile(p.id);
    EXPECT_EQ(looked_up.name, p.name);
    EXPECT_EQ(looked_up.ephemeral_lo, p.ephemeral_lo);
    EXPECT_EQ(looked_up.ephemeral_hi, p.ephemeral_hi);
    EXPECT_EQ(looked_up.family, p.family);
  }
}

TEST(OsModel, KnownEphemeralRangesMatchThePaper) {
  // §5.3.2: Linux ip_local_port_range default 32768..61000.
  for (const OsId id : {OsId::kUbuntu1004, OsId::kUbuntu1604,
                        OsId::kUbuntu1904, OsId::kBaiduLike}) {
    const OsProfile& p = sim::os_profile(id);
    EXPECT_EQ(p.ephemeral_lo, 32768) << p.name;
    EXPECT_EQ(p.ephemeral_hi, 61000) << p.name;
    EXPECT_EQ(p.ephemeral_pool_size(), 28233u) << p.name;
  }
  // IANA range for FreeBSD and Windows Server.
  for (const OsId id : {OsId::kFreeBsd113, OsId::kFreeBsd121, OsId::kWin2003,
                        OsId::kWin2019}) {
    const OsProfile& p = sim::os_profile(id);
    EXPECT_EQ(p.ephemeral_lo, 49152) << p.name;
    EXPECT_EQ(p.ephemeral_hi, 65535) << p.name;
    EXPECT_EQ(p.ephemeral_pool_size(), 16384u) << p.name;
  }
  // Synthetic embedded stacks expose the whole registered-port space.
  for (const OsId id : {OsId::kEmbeddedCpe, OsId::kMiddleboxFronted}) {
    const OsProfile& p = sim::os_profile(id);
    EXPECT_EQ(p.ephemeral_lo, 1024) << p.name;
    EXPECT_EQ(p.ephemeral_hi, 65535) << p.name;
    EXPECT_EQ(p.ephemeral_pool_size(), 64512u) << p.name;
  }
}

TEST(OsModel, Table6AcceptanceRules) {
  for (const OsProfile& p : sim::all_os_profiles()) {
    switch (p.family) {
      case OsFamily::kLinux:
        // Linux drops v4 destination-as-source, passes the v6 variant.
        EXPECT_FALSE(p.accepts_dst_as_src_v4) << p.name;
        EXPECT_TRUE(p.accepts_dst_as_src_v6) << p.name;
        EXPECT_FALSE(p.accepts_loopback_v4) << p.name;
        break;
      case OsFamily::kFreeBsd:
        EXPECT_TRUE(p.accepts_dst_as_src_v4) << p.name;
        EXPECT_TRUE(p.accepts_dst_as_src_v6) << p.name;
        break;
      case OsFamily::kWindows:
        EXPECT_TRUE(p.accepts_dst_as_src_v4) << p.name;
        // Only 2003 / 2003 R2 accept a v4 loopback source.
        EXPECT_EQ(p.accepts_loopback_v4,
                  p.id == OsId::kWin2003 || p.id == OsId::kWin2003R2)
            << p.name;
        break;
      case OsFamily::kOther:
        break;
    }
  }
  // Old Linux kernels (<= 4.x per the lab table) accept v6 loopback.
  EXPECT_TRUE(sim::os_profile(OsId::kUbuntu1004).accepts_loopback_v6);
  EXPECT_TRUE(sim::os_profile(OsId::kUbuntu1404).accepts_loopback_v6);
  EXPECT_FALSE(sim::os_profile(OsId::kUbuntu1604).accepts_loopback_v6);
  EXPECT_FALSE(sim::os_profile(OsId::kUbuntu1904).accepts_loopback_v6);
}

TEST(OsModel, UnknownIdThrows) {
  EXPECT_THROW(sim::os_profile(static_cast<OsId>(250)), InvariantError);
}

TEST(OsModel, HostEphemeralPortStaysInsideEveryProfilesPool) {
  sim::EventLoop loop;
  sim::Topology topology;
  topology.add_as(1, sim::FilterPolicy{});
  topology.announce(1, Prefix::must_parse("21.0.0.0/16"));
  sim::Network network(topology, loop, Rng(7));

  std::uint32_t host_idx = 0;
  for (const OsProfile& p : sim::all_os_profiles()) {
    const std::string addr = "21.0.0." + std::to_string(1 + host_idx);
    sim::Host host(network, 1, p, {IpAddr::must_parse(addr)}, Rng(host_idx));
    ++host_idx;
    std::uint16_t lo_seen = 65535;
    std::uint16_t hi_seen = 0;
    for (int i = 0; i < 512; ++i) {
      const std::uint16_t port = host.ephemeral_port();
      ASSERT_GE(port, p.ephemeral_lo) << p.name;
      ASSERT_LE(port, p.ephemeral_hi) << p.name;
      lo_seen = std::min(lo_seen, port);
      hi_seen = std::max(hi_seen, port);
    }
    // 512 draws from a >=1024-port pool should spread well beyond a single
    // corner of the range (quarter-width is a loose, deterministic bound).
    EXPECT_LT(static_cast<std::uint32_t>(lo_seen),
              p.ephemeral_lo + p.ephemeral_pool_size() / 4)
        << p.name;
    EXPECT_GT(static_cast<std::uint32_t>(hi_seen),
              p.ephemeral_hi - p.ephemeral_pool_size() / 4)
        << p.name;
  }
}

}  // namespace
