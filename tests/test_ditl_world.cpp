// Tests: DITL filtering and generated-world invariants.
#include <gtest/gtest.h>

#include <set>

#include "ditl/ditl.h"
#include "ditl/world.h"
#include "net/special.h"

namespace {

using namespace cd;
using net::IpAddr;

TEST(DitlFilter, AppliesPaperExclusions) {
  sim::Topology topo;
  topo.add_as(1);
  topo.announce(1, net::Prefix::must_parse("20.0.0.0/16"));

  const std::vector<IpAddr> raw = {
      IpAddr::must_parse("20.0.0.1"),      // routed: kept
      IpAddr::must_parse("10.1.2.3"),      // special purpose: dropped
      IpAddr::must_parse("192.168.5.5"),   // special purpose: dropped
      IpAddr::must_parse("11.0.0.1"),      // unrouted: dropped
      IpAddr::must_parse("20.0.200.9"),    // routed: kept
  };
  ditl::DitlFilterStats stats;
  const auto targets = ditl::filter_ditl(raw, topo, &stats);
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0].asn, 1u);
  EXPECT_EQ(stats.raw, 5u);
  EXPECT_EQ(stats.excluded_special, 2u);
  EXPECT_EQ(stats.excluded_unrouted, 1u);
  EXPECT_EQ(stats.accepted, 2u);
}

class WorldInvariants : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = ditl::generate_world(ditl::small_world_spec()).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static ditl::World* world_;
};

ditl::World* WorldInvariants::world_ = nullptr;

TEST_F(WorldInvariants, EveryTargetRoutesToItsAsn) {
  for (const auto& target : world_->targets) {
    EXPECT_EQ(world_->topology.asn_of(target.addr), target.asn)
        << target.addr.to_string();
  }
}

TEST_F(WorldInvariants, NoSpecialPurposeTargets) {
  for (const auto& target : world_->targets) {
    EXPECT_FALSE(net::is_special_purpose(target.addr));
  }
}

TEST_F(WorldInvariants, ResolverAddressesUniqueAndHosted) {
  std::set<IpAddr> seen;
  for (const auto& [addr, truth] : world_->truth_resolvers) {
    EXPECT_TRUE(seen.insert(addr).second);
    EXPECT_NE(world_->network->host_at(addr), nullptr)
        << addr.to_string() << " has truth but no host";
  }
}

TEST_F(WorldInvariants, RootHintsPointAtLiveAuthServers) {
  ASSERT_FALSE(world_->hints.servers.empty());
  for (const IpAddr& addr : world_->hints.servers) {
    EXPECT_NE(world_->network->host_at(addr), nullptr);
  }
}

TEST_F(WorldInvariants, ExperimentAuthsRegistered) {
  // Base zone + v4 + v6 subzone servers.
  EXPECT_EQ(world_->experiment_auths.size(), 3u);
  EXPECT_NE(world_->vantage, nullptr);
  // The vantage AS must not deploy OSAV (the §3.4 requirement).
  const auto* as_info = world_->topology.find(world_->vantage->asn());
  ASSERT_NE(as_info, nullptr);
  EXPECT_FALSE(as_info->policy.osav);
}

TEST_F(WorldInvariants, TruthTablesCoverEdgeAses) {
  EXPECT_EQ(world_->truth_dsav.size(),
            static_cast<std::size_t>(world_->spec.n_asns));
  for (const auto& [asn, dsav] : world_->truth_dsav) {
    const auto* info = world_->topology.find(asn);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->policy.dsav, dsav);
  }
}

TEST_F(WorldInvariants, GeoCoversAllTargets) {
  for (const auto& target : world_->targets) {
    EXPECT_TRUE(world_->geo.country_of(target.addr).has_value())
        << target.addr.to_string();
  }
}

TEST_F(WorldInvariants, HitlistEntriesAreV6ResolverAddresses) {
  for (const IpAddr& addr : world_->hitlist_v6) {
    EXPECT_TRUE(addr.is_v6());
    EXPECT_TRUE(world_->truth_resolvers.count(addr));
  }
}

TEST_F(WorldInvariants, CaptureContainsNoiseBeyondResolvers) {
  // stale/special/unrouted entries inflate the capture beyond live targets.
  EXPECT_GT(world_->ditl_raw.size(), world_->truth_resolvers.size());
  // And filtering strips some of it.
  EXPECT_LT(world_->targets.size(), world_->ditl_raw.size());
}

TEST_F(WorldInvariants, MarginalsRoughlyHonored) {
  // DSAV deployment should be in a plausible band around the country-mix
  // average (small world -> generous tolerance).
  std::size_t dsav = 0;
  for (const auto& [asn, d] : world_->truth_dsav) {
    if (d) ++dsav;
  }
  const double rate =
      static_cast<double>(dsav) / static_cast<double>(world_->truth_dsav.size());
  EXPECT_GT(rate, 0.25);
  EXPECT_LT(rate, 0.80);

  // Forwarders exist but are not everything.
  std::size_t forwards = 0;
  for (const auto& [addr, truth] : world_->truth_resolvers) {
    if (truth.forwards) ++forwards;
  }
  EXPECT_GT(forwards, 0u);
  EXPECT_LT(forwards, world_->truth_resolvers.size());
}

TEST(WorldGen, SeedsChangeWorlds) {
  auto spec = ditl::small_world_spec();
  const auto w1 = ditl::generate_world(spec);
  spec.seed = 777;
  const auto w2 = ditl::generate_world(spec);
  EXPECT_NE(w1->ditl_raw, w2->ditl_raw);
}

TEST(WorldGen, WildcardSpecAddsZoneRecords) {
  auto spec = ditl::small_world_spec();
  spec.wildcard_answers = true;
  const auto world = ditl::generate_world(spec);
  // The base zone can now answer an arbitrary experiment name.
  bool found_wildcard_answer = false;
  for (const auto& zone : world->zones) {
    const auto result = zone->lookup(
        dns::DnsName::must_parse("1.2.3.4.m0." + spec.keyword + "." +
                                 spec.base_zone),
        dns::RrType::kA);
    if (result.kind == dns::LookupKind::kAnswer && result.wildcard) {
      found_wildcard_answer = true;
    }
  }
  EXPECT_TRUE(found_wildcard_answer);
}

TEST(WorldGen, PublicDnsServicesAreOpenResolvers) {
  const auto world = ditl::generate_world(ditl::small_world_spec());
  ASSERT_EQ(world->public_dns_addrs.size(), 8u);  // 4 services, dual-stack
  for (const IpAddr& addr : world->public_dns_addrs) {
    EXPECT_NE(world->network->host_at(addr), nullptr);
  }
}

}  // namespace
