// Unit + property tests: Beta distribution model and derived cutoffs.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/beta.h"
#include "util/error.h"

namespace {

using namespace cd::analysis;

TEST(Beta, CdfBoundaries) {
  EXPECT_DOUBLE_EQ(beta_cdf(0.0, 9, 2), 0.0);
  EXPECT_DOUBLE_EQ(beta_cdf(1.0, 9, 2), 1.0);
  EXPECT_DOUBLE_EQ(beta_cdf(-1.0, 9, 2), 0.0);
  EXPECT_DOUBLE_EQ(beta_cdf(2.0, 9, 2), 1.0);
}

TEST(Beta, CdfMonotonic) {
  double prev = 0;
  for (double x = 0; x <= 1.0001; x += 0.01) {
    const double c = beta_cdf(x, 9, 2);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

TEST(Beta, UniformSpecialCase) {
  // Beta(1,1) is uniform: CDF(x) = x.
  for (double x = 0.1; x < 1.0; x += 0.2) {
    EXPECT_NEAR(beta_cdf(x, 1, 1), x, 1e-9);
  }
}

TEST(Beta, PdfIntegratesToOne) {
  double integral = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = (i + 0.5) / n;
    integral += beta_pdf(x, 9, 2) / n;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(Beta, PdfConsistentWithCdf) {
  // Numerical derivative of the CDF matches the PDF.
  for (double x = 0.2; x < 0.95; x += 0.15) {
    const double h = 1e-6;
    const double deriv = (beta_cdf(x + h, 9, 2) - beta_cdf(x - h, 9, 2)) / (2 * h);
    EXPECT_NEAR(deriv, beta_pdf(x, 9, 2), 1e-3 * beta_pdf(x, 9, 2) + 1e-6);
  }
}

TEST(Beta, QuantileInvertsCdf) {
  for (double p = 0.05; p < 1.0; p += 0.1) {
    const double x = beta_quantile(p, 9, 2);
    EXPECT_NEAR(beta_cdf(x, 9, 2), p, 1e-9);
  }
}

TEST(Beta, KnownMoments) {
  // Mean of Beta(9,2) = 9/11; mode = 8/9.
  // CDF at the mean should be close to 0.47 (left-skewed distribution).
  const double mean = 9.0 / 11.0;
  EXPECT_GT(beta_cdf(mean, 9, 2), 0.3);
  EXPECT_LT(beta_cdf(mean, 9, 2), 0.6);
  // Mode: pdf is maximal near 8/9.
  const double mode = 8.0 / 9.0;
  EXPECT_GT(beta_pdf(mode, 9, 2), beta_pdf(mode - 0.05, 9, 2));
  EXPECT_GT(beta_pdf(mode, 9, 2), beta_pdf(mode + 0.05, 9, 2));
}

TEST(RangeModel, ScalesWithPool) {
  // Same normalized range -> same CDF regardless of pool size.
  EXPECT_NEAR(range_cdf(0.5 * 2499, 2500), range_cdf(0.5 * 64511, 64512),
              1e-9);
  // A 2,400 range is entirely plausible for the Windows pool, implausible
  // for the full range.
  EXPECT_GT(range_cdf(2400, 2500), 0.9);
  EXPECT_LT(range_cdf(2400, 64512), 1e-8);
}

TEST(RangeModel, QuantileMatchesPaperWindowsEdge) {
  // The paper's 941-2,488 Windows band corresponds to ~0.1%/99.9% quantiles
  // of the 2,500-port pool.
  EXPECT_NEAR(range_quantile(0.999, 2500), 2488, 3);
  EXPECT_NEAR(range_quantile(0.001, 2500), 941, 3);
}

TEST(OptimalCutoff, ReproducesPaperBoundaries) {
  // FreeBSD (16,384) vs Linux (28,233): the paper derived 16,331 with 0.05%
  // and 3.5% misclassification.
  const auto c1 = optimal_cutoff(16384, 28233);
  EXPECT_NEAR(c1.cutoff, 16331, 5);
  EXPECT_NEAR(c1.small_pool_error, 0.0005, 0.0005);
  EXPECT_NEAR(c1.large_pool_error, 0.035, 0.005);

  // Linux vs full range: 28,222 with 0.35% combined error.
  const auto c2 = optimal_cutoff(28233, 64512);
  EXPECT_NEAR(c2.cutoff, 28222, 5);
  EXPECT_NEAR(c2.small_pool_error + c2.large_pool_error, 0.007, 0.004);
}

TEST(OptimalCutoff, OrderEnforced) {
  EXPECT_THROW((void)optimal_cutoff(100, 100), cd::InvariantError);
  EXPECT_THROW((void)optimal_cutoff(200, 100), cd::InvariantError);
}

TEST(SmallPoolProbability, AnalyticSmallCases) {
  // n=2 draws: P(<=1 unique) = P(second equals first) = 1/N.
  EXPECT_NEAR(small_pool_probability(10, 2, 1), 0.1, 1e-12);
  EXPECT_NEAR(small_pool_probability(4, 2, 1), 0.25, 1e-12);
  // Everything is <= n unique.
  EXPECT_NEAR(small_pool_probability(100, 5, 5), 1.0, 1e-12);
  // Can't see more unique values than pool size... P(<=N unique) = 1.
  EXPECT_NEAR(small_pool_probability(3, 10, 3), 1.0, 1e-12);
}

TEST(SmallPoolProbability, PaperValue) {
  // §5.2.3: "<=7 unique of 10 from a 200-port pool ... 0.066% of the time".
  EXPECT_NEAR(small_pool_probability(200, 10, 7), 0.00066, 0.00003);
}

TEST(SmallPoolProbability, MonotoneInMaxUnique) {
  double prev = 0;
  for (int k = 1; k <= 10; ++k) {
    const double p = small_pool_probability(50, 10, k);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

}  // namespace
