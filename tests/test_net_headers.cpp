// Unit + property tests: checksums, wire headers, packet round trips.
#include <gtest/gtest.h>

#include "net/checksum.h"
#include "net/headers.h"
#include "net/packet.h"
#include "net/special.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace cd;
using net::IpAddr;
using net::Packet;

// --- checksum ------------------------------------------------------------------

TEST(Checksum, Rfc1071Example) {
  // Classic example from RFC 1071 §3.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(net::internet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, OddLengthPadsLastByte) {
  const std::uint8_t data[] = {0x12, 0x34, 0x56};
  net::Checksum c;
  c.add_word(0x1234);
  c.add_word(0x5600);
  EXPECT_EQ(net::internet_checksum(data), c.finish());
}

TEST(Checksum, VerifiesToZeroWithEmbeddedSum) {
  const std::uint8_t data[] = {0xAB, 0xCD, 0x00, 0x11};
  const std::uint16_t sum = net::internet_checksum(data);
  std::vector<std::uint8_t> with_sum(data, data + 4);
  with_sum.push_back(static_cast<std::uint8_t>(sum >> 8));
  with_sum.push_back(static_cast<std::uint8_t>(sum));
  EXPECT_EQ(net::internet_checksum(with_sum), 0);
}

// --- IPv4 header ------------------------------------------------------------------

TEST(Ipv4Header, RoundTrip) {
  net::Ipv4Header h;
  h.total_length = 40;
  h.identification = 0xBEEF;
  h.ttl = 57;
  h.protocol = net::IpProto::kTcp;
  h.src = IpAddr::must_parse("10.1.2.3");
  h.dst = IpAddr::must_parse("203.0.113.9");
  const auto wire = h.serialize();
  ASSERT_EQ(wire.size(), net::Ipv4Header::kSize);
  const auto parsed = net::Ipv4Header::parse(wire);
  EXPECT_EQ(parsed.total_length, 40);
  EXPECT_EQ(parsed.identification, 0xBEEF);
  EXPECT_EQ(parsed.ttl, 57);
  EXPECT_EQ(parsed.protocol, net::IpProto::kTcp);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.dst, h.dst);
}

TEST(Ipv4Header, DetectsCorruption) {
  net::Ipv4Header h;
  h.src = IpAddr::must_parse("10.0.0.1");
  h.dst = IpAddr::must_parse("10.0.0.2");
  auto wire = h.serialize();
  wire[8] ^= 0xFF;  // flip the TTL
  EXPECT_THROW((void)net::Ipv4Header::parse(wire), ParseError);
}

TEST(Ipv4Header, RejectsShortBuffer) {
  const std::vector<std::uint8_t> wire(10, 0);
  EXPECT_THROW((void)net::Ipv4Header::parse(wire), ParseError);
}

// --- IPv6 header --------------------------------------------------------------------

TEST(Ipv6Header, RoundTrip) {
  net::Ipv6Header h;
  h.payload_length = 123;
  h.next_header = net::IpProto::kUdp;
  h.hop_limit = 61;
  h.flow_label = 0xABCDE;
  h.src = IpAddr::must_parse("2001:db8::1");
  h.dst = IpAddr::must_parse("2620:fe::9");
  const auto parsed = net::Ipv6Header::parse(h.serialize());
  EXPECT_EQ(parsed.payload_length, 123);
  EXPECT_EQ(parsed.hop_limit, 61);
  EXPECT_EQ(parsed.flow_label, 0xABCDEu);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.dst, h.dst);
}

// --- TCP options / fingerprint fields --------------------------------------------------

TEST(TcpHeader, OptionOrderingPreserved) {
  net::TcpHeader h;
  h.src_port = 40000;
  h.dst_port = 53;
  h.flags.syn = true;
  h.window = 29200;
  h.options = {{net::TcpOptionKind::kMss, 1460},
               {net::TcpOptionKind::kSackPermitted, 0},
               {net::TcpOptionKind::kTimestamp, 777},
               {net::TcpOptionKind::kNop, 0},
               {net::TcpOptionKind::kWindowScale, 7}};
  const auto src = IpAddr::must_parse("192.0.2.1");
  const auto dst = IpAddr::must_parse("192.0.2.2");
  const auto parsed = net::TcpHeader::parse(h.serialize(src, dst, {}));
  EXPECT_EQ(parsed.options, h.options);
  EXPECT_EQ(parsed.window, 29200);
  EXPECT_TRUE(parsed.flags.syn);
}

TEST(TcpHeader, SizePadding) {
  net::TcpHeader h;
  EXPECT_EQ(h.size(), 20u);
  h.options = {{net::TcpOptionKind::kMss, 1460}};  // 4 bytes -> no padding
  EXPECT_EQ(h.size(), 24u);
  h.options.push_back({net::TcpOptionKind::kWindowScale, 7});  // +3 -> pad to 28
  EXPECT_EQ(h.size(), 28u);
}

// --- Packet round trips -----------------------------------------------------------------

TEST(Packet, UdpRoundTripV4) {
  const Packet p = net::make_udp(IpAddr::must_parse("198.51.100.7"), 5353,
                                 IpAddr::must_parse("192.0.2.53"), 53,
                                 {1, 2, 3, 4, 5}, 63);
  const Packet q = Packet::parse(p.serialize());
  EXPECT_EQ(q.src, p.src);
  EXPECT_EQ(q.dst, p.dst);
  EXPECT_EQ(q.src_port, 5353);
  EXPECT_EQ(q.dst_port, 53);
  EXPECT_EQ(q.ttl, 63);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(Packet, UdpRoundTripV6) {
  const Packet p = net::make_udp(IpAddr::must_parse("2001:db8::a"), 1234,
                                 IpAddr::must_parse("2001:db8::b"), 53,
                                 {9, 8, 7});
  const Packet q = Packet::parse(p.serialize());
  EXPECT_EQ(q.src, p.src);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(Packet, TcpSynCarriesFingerprint) {
  Packet p = net::make_tcp(IpAddr::must_parse("10.0.0.1"), 40000,
                           IpAddr::must_parse("10.0.0.2"), 53,
                           net::TcpFlags{.syn = true}, {}, 128);
  p.tcp_window = 8192;
  p.tcp_options = {{net::TcpOptionKind::kMss, 1460},
                   {net::TcpOptionKind::kNop, 0},
                   {net::TcpOptionKind::kWindowScale, 8}};
  const Packet q = Packet::parse(p.serialize());
  EXPECT_TRUE(q.tcp_flags.syn);
  EXPECT_EQ(q.ttl, 128);
  EXPECT_EQ(q.tcp_window, 8192);
  EXPECT_EQ(q.tcp_options, p.tcp_options);
}

TEST(Packet, MixedFamilyRejected) {
  Packet p = net::make_udp(IpAddr::must_parse("10.0.0.1"), 1,
                           IpAddr::must_parse("10.0.0.2"), 2, {});
  p.dst = IpAddr::must_parse("2001:db8::1");
  EXPECT_THROW((void)p.serialize(), InvariantError);
}

TEST(Packet, ParseGarbageThrows) {
  const std::vector<std::uint8_t> garbage = {0xFF, 0x00, 0x11};
  EXPECT_THROW((void)Packet::parse(garbage), ParseError);
  EXPECT_THROW((void)Packet::parse({}), ParseError);
}

TEST(Packet, RandomUdpRoundTripProperty) {
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const bool v4 = rng.chance(0.5);
    const IpAddr src = v4 ? IpAddr::v4(static_cast<std::uint32_t>(rng.u64()))
                          : IpAddr::v6(rng.u64(), rng.u64());
    const IpAddr dst = v4 ? IpAddr::v4(static_cast<std::uint32_t>(rng.u64()))
                          : IpAddr::v6(rng.u64(), rng.u64());
    std::vector<std::uint8_t> payload(rng.uniform(200));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.u64());
    const Packet p = net::make_udp(src, static_cast<std::uint16_t>(rng.u64()),
                                   dst, static_cast<std::uint16_t>(rng.u64()),
                                   payload,
                                   static_cast<std::uint8_t>(1 + rng.uniform(255)));
    const Packet q = Packet::parse(p.serialize());
    ASSERT_EQ(q.src, p.src);
    ASSERT_EQ(q.dst, p.dst);
    ASSERT_EQ(q.src_port, p.src_port);
    ASSERT_EQ(q.dst_port, p.dst_port);
    ASSERT_EQ(q.ttl, p.ttl);
    ASSERT_EQ(q.payload, p.payload);
  }
}

// --- special-purpose registries --------------------------------------------------------

class SpecialV4 : public ::testing::TestWithParam<const char*> {};

TEST_P(SpecialV4, IsSpecial) {
  EXPECT_TRUE(net::is_special_purpose(IpAddr::must_parse(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(Cases, SpecialV4,
                         ::testing::Values("0.1.2.3", "10.200.1.1",
                                           "100.64.0.1", "127.0.0.1",
                                           "169.254.1.1", "172.31.255.255",
                                           "192.0.0.1", "192.0.2.99",
                                           "192.88.99.1", "192.168.0.10",
                                           "198.18.0.1", "198.51.100.1",
                                           "203.0.113.1", "224.0.0.1",
                                           "255.255.255.255"));

class SpecialV6 : public ::testing::TestWithParam<const char*> {};

TEST_P(SpecialV6, IsSpecial) {
  EXPECT_TRUE(net::is_special_purpose(IpAddr::must_parse(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(Cases, SpecialV6,
                         ::testing::Values("::", "::1", "::ffff:1.2.3.4",
                                           "64:ff9b::1", "100::1",
                                           "2001:db8::1", "2002::1",
                                           "fc00::10", "fdff::1", "fe80::1",
                                           "ff02::1"));

class NotSpecial : public ::testing::TestWithParam<const char*> {};

TEST_P(NotSpecial, IsPublic) {
  EXPECT_FALSE(net::is_special_purpose(IpAddr::must_parse(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(Cases, NotSpecial,
                         ::testing::Values("8.8.8.8", "1.1.1.1", "20.0.0.1",
                                           "172.32.0.1", "192.169.0.1",
                                           "223.255.255.255", "2400:19::1",
                                           "2620:fe::9", "2001:4860::8888"));

TEST(Special, Helpers) {
  EXPECT_TRUE(net::is_private_v4(IpAddr::must_parse("10.0.0.1")));
  EXPECT_FALSE(net::is_private_v4(IpAddr::must_parse("11.0.0.1")));
  EXPECT_FALSE(net::is_private_v4(IpAddr::must_parse("fc00::1")));
  EXPECT_TRUE(net::is_unique_local_v6(IpAddr::must_parse("fc00::10")));
  EXPECT_TRUE(net::is_unique_local_v6(IpAddr::must_parse("fd12::1")));
  EXPECT_FALSE(net::is_unique_local_v6(IpAddr::must_parse("fe80::1")));
  EXPECT_TRUE(net::is_loopback(IpAddr::must_parse("127.0.0.1")));
  EXPECT_TRUE(net::is_loopback(IpAddr::must_parse("127.255.0.1")));
  EXPECT_TRUE(net::is_loopback(IpAddr::must_parse("::1")));
  EXPECT_FALSE(net::is_loopback(IpAddr::must_parse("::2")));
}

}  // namespace
