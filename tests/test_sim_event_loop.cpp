// Unit tests: discrete event loop. Every test runs against BOTH engines —
// the hierarchical timing wheel and the retired priority-queue oracle — so
// the semantic contract (time order, same-tick FIFO, batch lifecycle,
// cancellation) is pinned identically for the pair.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "util/error.h"

namespace {

using namespace cd;
using sim::EventLoop;

class EventLoopTest : public ::testing::TestWithParam<sim::EventEngine> {};
class EventLoopBatchTest : public ::testing::TestWithParam<sim::EventEngine> {};

std::string engine_name(
    const ::testing::TestParamInfo<sim::EventEngine>& info) {
  return info.param == sim::EventEngine::kWheel ? "Wheel" : "PriorityQueue";
}

INSTANTIATE_TEST_SUITE_P(Engines, EventLoopTest,
                         ::testing::Values(sim::EventEngine::kWheel,
                                           sim::EventEngine::kPriorityQueue),
                         engine_name);
INSTANTIATE_TEST_SUITE_P(Engines, EventLoopBatchTest,
                         ::testing::Values(sim::EventEngine::kWheel,
                                           sim::EventEngine::kPriorityQueue),
                         engine_name);

TEST_P(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop(GetParam());
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST_P(EventLoopTest, SameTimeIsFifo) {
  EventLoop loop(GetParam());
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST_P(EventLoopTest, ScheduleInIsRelative) {
  EventLoop loop(GetParam());
  sim::SimTime fired_at = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_in(50, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 150);
}

TEST_P(EventLoopTest, PastTimesClampToNow) {
  EventLoop loop(GetParam());
  sim::SimTime fired_at = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_at(10, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 100);
}

TEST_P(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop(GetParam());
  bool ran = false;
  const auto id = loop.schedule_at(10, [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.executed(), 0u);
}

TEST_P(EventLoopTest, CancelAlreadyRunIsSafe) {
  EventLoop loop(GetParam());
  const auto id = loop.schedule_at(1, [] {});
  loop.run();
  loop.cancel(id);  // no effect, no crash
  loop.schedule_at(2, [] {});
  loop.run();
  EXPECT_EQ(loop.executed(), 2u);
}

TEST_P(EventLoopTest, RunUntilLeavesLaterEvents) {
  EventLoop loop(GetParam());
  int count = 0;
  loop.schedule_at(10, [&] { ++count; });
  loop.schedule_at(20, [&] { ++count; });
  loop.schedule_at(30, [&] { ++count; });
  loop.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(count, 3);
}

TEST_P(EventLoopTest, MaxEventsGuardThrows) {
  EventLoop loop(GetParam());
  // A self-rescheduling event would run forever.
  std::function<void()> self = [&] { loop.schedule_in(1, self); };
  loop.schedule_at(0, self);
  EXPECT_THROW(loop.run(1000), InvariantError);
}

// --- batched scheduling ------------------------------------------------------

TEST_P(EventLoopBatchTest, SameSlotCoalescesIntoOneQueueEntry) {
  EventLoop loop(GetParam());
  std::vector<int> order;
  const auto id1 = loop.schedule_batched(10, 7, [&] { order.push_back(1); });
  const auto id2 = loop.schedule_batched(10, 7, [&] { order.push_back(2); });
  const auto id3 = loop.schedule_batched(10, 7, [&] { order.push_back(3); });
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(id1, id3);
  EXPECT_EQ(loop.pending(), 1u);  // one entry, three items
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.executed(), 3u);  // each item counts
}

TEST_P(EventLoopBatchTest, BatchRunsAtFirstAppendPosition) {
  // Interleaved with singleton events on the same tick, the whole batch
  // runs where its FIRST item was scheduled; later appends ride along.
  EventLoop loop(GetParam());
  std::vector<char> order;
  loop.schedule_at(10, [&] { order.push_back('a'); });
  loop.schedule_batched(10, 1, [&] { order.push_back('x'); });
  loop.schedule_at(10, [&] { order.push_back('b'); });
  loop.schedule_batched(10, 1, [&] { order.push_back('y'); });
  loop.schedule_at(10, [&] { order.push_back('c'); });
  loop.run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'x', 'y', 'b', 'c'}));
}

TEST_P(EventLoopBatchTest, DistinctKeysKeepDistinctBatchesInCreationOrder) {
  EventLoop loop(GetParam());
  std::vector<int> order;
  loop.schedule_batched(5, 100, [&] { order.push_back(1); });
  loop.schedule_batched(5, 200, [&] { order.push_back(10); });
  loop.schedule_batched(5, 100, [&] { order.push_back(2); });
  loop.schedule_batched(5, 200, [&] { order.push_back(20); });
  EXPECT_EQ(loop.pending(), 2u);
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 10, 20}));
}

TEST_P(EventLoopBatchTest, SameKeyDifferentTimesAreDifferentBatches) {
  EventLoop loop(GetParam());
  std::vector<int> order;
  loop.schedule_batched(20, 7, [&] { order.push_back(2); });
  loop.schedule_batched(10, 7, [&] { order.push_back(1); });
  EXPECT_EQ(loop.pending(), 2u);
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(EventLoopBatchTest, PastTimesClampToNowLikeScheduleAt) {
  EventLoop loop(GetParam());
  sim::SimTime fired_at = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_batched(10, 3, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 100);
}

TEST_P(EventLoopBatchTest, CancelDropsWholeBatch) {
  EventLoop loop(GetParam());
  int ran = 0;
  const auto id = loop.schedule_batched(10, 1, [&] { ++ran; });
  loop.schedule_batched(10, 1, [&] { ++ran; });
  loop.cancel(id);
  loop.run();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(loop.executed(), 0u);
}

TEST_P(EventLoopBatchTest, AppendAfterCancelOpensFreshLiveBatch) {
  EventLoop loop(GetParam());
  std::vector<int> order;
  const auto dead = loop.schedule_batched(10, 1, [&] { order.push_back(1); });
  loop.cancel(dead);
  const auto live = loop.schedule_batched(10, 1, [&] { order.push_back(2); });
  EXPECT_NE(dead, live);
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST_P(EventLoopBatchTest, CancelFromInsideRunningBatchSkipsRemainder) {
  EventLoop loop(GetParam());
  std::vector<int> order;
  sim::EventId id = 0;
  id = loop.schedule_batched(10, 1, [&] {
    order.push_back(1);
    loop.cancel(id);  // cancel own batch mid-drain
  });
  loop.schedule_batched(10, 1, [&] { order.push_back(2); });
  loop.schedule_batched(10, 1, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(loop.executed(), 1u);
}

TEST_P(EventLoopBatchTest, ItemCanCancelAnotherPendingBatch) {
  EventLoop loop(GetParam());
  bool later_ran = false;
  const auto later = loop.schedule_batched(20, 2, [&] { later_ran = true; });
  loop.schedule_batched(10, 1, [&] { loop.cancel(later); });
  loop.run();
  EXPECT_FALSE(later_ran);
}

TEST_P(EventLoopBatchTest, AppendFromInsideDrainOpensSecondBatchSameTick) {
  // A batch closes when it starts draining: same-slot appends made by its
  // own items form a NEW batch that still runs this tick, after the first.
  EventLoop loop(GetParam());
  std::vector<int> order;
  loop.schedule_batched(10, 1, [&] {
    order.push_back(1);
    loop.schedule_batched(10, 1, [&] { order.push_back(3); });
  });
  loop.schedule_batched(10, 1, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 10);
}

TEST_P(EventLoopBatchTest, RunUntilDrainsDueBatchesAndSplitsLaterAppends) {
  EventLoop loop(GetParam());
  std::vector<int> order;
  loop.schedule_batched(10, 1, [&] { order.push_back(1); });
  loop.schedule_batched(10, 1, [&] { order.push_back(2); });
  loop.schedule_batched(30, 1, [&] { order.push_back(9); });

  // Nothing due yet: batches stay queued AND open for appends.
  loop.run_until(5);
  EXPECT_EQ(order.size(), 0u);
  loop.schedule_batched(10, 1, [&] { order.push_back(3); });

  // The t=10 batch (all three items, including the post-run_until append)
  // drains completely; the t=30 batch stays.
  loop.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.pending(), 1u);

  // A batch slot that already ran is closed: a new same-slot append opens a
  // fresh batch at the clamped current time and runs on the next drain.
  loop.schedule_batched(10, 1, [&] { order.push_back(4); });
  loop.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));

  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 9}));
}

TEST_P(EventLoopBatchTest, MaxEventsCountsEveryBatchItem) {
  {
    EventLoop loop(GetParam());
    for (int i = 0; i < 5; ++i) loop.schedule_batched(10, 1, [] {});
    EXPECT_THROW(loop.run(4), InvariantError);
  }
  {
    EventLoop loop(GetParam());
    for (int i = 0; i < 5; ++i) loop.schedule_batched(10, 1, [] {});
    loop.run(5);  // exactly enough
    EXPECT_EQ(loop.executed(), 5u);
  }
}

TEST_P(EventLoopBatchTest, StressMixedSingletonsAndBatchesKeepInvariants) {
  // Random mix of singleton and batched scheduling: time stays monotonic,
  // items within one (time, key) slot run in append order, and nothing is
  // lost or duplicated.
  EventLoop loop(GetParam());
  std::uint64_t scheduled = 0;
  std::uint64_t ran = 0;
  sim::SimTime last = -1;
  bool monotonic = true;
  bool slots_in_order = true;
  using Slot = std::pair<sim::SimTime, int>;
  std::map<Slot, int> appended;  // next sequence number to hand out
  std::map<Slot, int> executed;  // next sequence number expected to run

  std::uint64_t state = 0x5EED;
  auto rnd = [&state](std::uint64_t mod) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33) % mod;
  };

  for (int i = 0; i < 2000; ++i) {
    const auto at = static_cast<sim::SimTime>(rnd(50));
    auto check = [&] {
      ++ran;
      if (loop.now() < last) monotonic = false;
      last = loop.now();
    };
    ++scheduled;
    if (rnd(2) == 0) {
      loop.schedule_at(at, check);
    } else {
      const int key = static_cast<int>(rnd(5));
      const int seq = appended[{at, key}]++;
      loop.schedule_batched(at, static_cast<EventLoop::BatchKey>(key),
                            [&, at, key, seq, check] {
                              check();
                              if (executed[{at, key}]++ != seq) {
                                slots_in_order = false;
                              }
                            });
    }
  }
  loop.run();
  EXPECT_TRUE(monotonic);
  EXPECT_TRUE(slots_in_order);
  EXPECT_EQ(executed, appended);
  EXPECT_EQ(ran, scheduled);
  EXPECT_EQ(loop.executed(), scheduled);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST_P(EventLoopTest, NowMonotonicThroughChaos) {
  EventLoop loop(GetParam());
  sim::SimTime last = -1;
  bool monotonic = true;
  for (int i = 0; i < 100; ++i) {
    loop.schedule_at((i * 37) % 100, [&] {
      if (loop.now() < last) monotonic = false;
      last = loop.now();
    });
  }
  loop.run();
  EXPECT_TRUE(monotonic);
}

}  // namespace
