// Unit tests: discrete event loop.
#include <gtest/gtest.h>

#include "sim/event_loop.h"
#include "util/error.h"

namespace {

using namespace cd;
using sim::EventLoop;

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameTimeIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, ScheduleInIsRelative) {
  EventLoop loop;
  sim::SimTime fired_at = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_in(50, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(EventLoop, PastTimesClampToNow) {
  EventLoop loop;
  sim::SimTime fired_at = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_at(10, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto id = loop.schedule_at(10, [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.executed(), 0u);
}

TEST(EventLoop, CancelAlreadyRunIsSafe) {
  EventLoop loop;
  const auto id = loop.schedule_at(1, [] {});
  loop.run();
  loop.cancel(id);  // no effect, no crash
  loop.schedule_at(2, [] {});
  loop.run();
  EXPECT_EQ(loop.executed(), 2u);
}

TEST(EventLoop, RunUntilLeavesLaterEvents) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(10, [&] { ++count; });
  loop.schedule_at(20, [&] { ++count; });
  loop.schedule_at(30, [&] { ++count; });
  loop.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(count, 3);
}

TEST(EventLoop, MaxEventsGuardThrows) {
  EventLoop loop;
  // A self-rescheduling event would run forever.
  std::function<void()> self = [&] { loop.schedule_in(1, self); };
  loop.schedule_at(0, self);
  EXPECT_THROW(loop.run(1000), InvariantError);
}

TEST(EventLoop, NowMonotonicThroughChaos) {
  EventLoop loop;
  sim::SimTime last = -1;
  bool monotonic = true;
  for (int i = 0; i < 100; ++i) {
    loop.schedule_at((i * 37) % 100, [&] {
      if (loop.now() < last) monotonic = false;
      last = loop.now();
    });
  }
  loop.run();
  EXPECT_TRUE(monotonic);
}

}  // namespace
