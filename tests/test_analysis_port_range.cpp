// Unit + parameterized tests: port statistics, the §5.3.2 Windows wrap
// adjustment, and Table 4 band classification.
#include <gtest/gtest.h>

#include "analysis/port_range.h"

namespace {

using namespace cd::analysis;

TEST(PortStats, Basic) {
  const std::vector<std::uint16_t> ports = {100, 105, 103, 101, 108};
  const PortStats s = compute_port_stats(ports);
  EXPECT_EQ(s.n, 5u);
  EXPECT_EQ(s.min, 100);
  EXPECT_EQ(s.max, 108);
  EXPECT_EQ(s.range, 8);
  EXPECT_EQ(s.unique_count, 5u);
  EXPECT_FALSE(s.strictly_increasing);
}

TEST(PortStats, Empty) {
  const PortStats s = compute_port_stats({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.range, 0);
}

TEST(PortStats, ZeroRange) {
  const std::vector<std::uint16_t> ports(10, 53);
  const PortStats s = compute_port_stats(ports);
  EXPECT_EQ(s.range, 0);
  EXPECT_EQ(s.unique_count, 1u);
  EXPECT_FALSE(s.strictly_increasing);  // repeats are not "increasing"
}

TEST(PortStats, StrictlyIncreasing) {
  const std::vector<std::uint16_t> ports = {10, 11, 12, 15, 20};
  const PortStats s = compute_port_stats(ports);
  EXPECT_TRUE(s.strictly_increasing);
  EXPECT_FALSE(s.wrapped);
}

TEST(PortStats, IncreasingWithOneWrap) {
  const std::vector<std::uint16_t> ports = {190, 195, 199, 101, 105, 110};
  const PortStats s = compute_port_stats(ports);
  EXPECT_TRUE(s.strictly_increasing);
  EXPECT_TRUE(s.wrapped);
}

TEST(PortStats, TwoDecreasesNotIncreasing) {
  const std::vector<std::uint16_t> ports = {190, 100, 195, 100, 105};
  EXPECT_FALSE(compute_port_stats(ports).strictly_increasing);
}

// --- §5.3.2 wrap adjustment -----------------------------------------------------

struct WrapCase {
  std::vector<std::uint16_t> ports;
  bool applies;
};

class WindowsWrap : public ::testing::TestWithParam<WrapCase> {};

TEST_P(WindowsWrap, ConditionEvaluated) {
  EXPECT_EQ(windows_wrap_applies(GetParam().ports), GetParam().applies);
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, WindowsWrap,
    ::testing::Values(
        // All in R_low only: no adjustment (condition 3 fails).
        WrapCase{{49152, 49200, 50000, 51000}, false},
        // All in R_high only: no adjustment (condition 2 fails).
        WrapCase{{65000, 65100, 65535, 63100}, false},
        // Split across both regions: adjust.
        WrapCase{{49152, 49500, 65300, 65535}, true},
        // One port outside both regions: condition 1 fails.
        WrapCase{{49152, 65535, 55000}, false},
        // Below the IANA range entirely: never.
        WrapCase{{1024, 2048}, false},
        // Empty: no.
        WrapCase{{}, false}));

TEST(WindowsWrap, AdjustmentRestoresContiguity) {
  // A wrapped Windows pool starting at 65300: ports 65300..65535 then
  // 49152..51415. Raw range looks like ~16,3xx; adjusted it is < 2,500.
  const std::vector<std::uint16_t> ports = {65300, 65400, 65535,
                                            49152, 49500, 51000};
  const PortStats raw = compute_port_stats(ports);
  EXPECT_GT(raw.range, 14000);
  const int adjusted = adjusted_range(ports);
  EXPECT_LT(adjusted, 2500);
  // Adjusted low ports moved up by i_max - i_min = 16,383.
  const auto adj = adjust_windows_wrap(ports);
  EXPECT_EQ(adj[3], 49152u + 16383u);
  EXPECT_EQ(adj[0], 65300u);  // high region untouched
}

TEST(WindowsWrap, NoOpWhenNotApplicable) {
  const std::vector<std::uint16_t> ports = {1024, 30000, 60000};
  EXPECT_EQ(adjusted_range(ports), compute_port_stats(ports).range);
}

// --- Table 4 bands ------------------------------------------------------------------

TEST(Table4Bands, StructureMatchesPaper) {
  const auto& bands = table4_bands();
  ASSERT_EQ(bands.size(), 8u);
  EXPECT_EQ(bands[3].os, "Windows DNS");
  EXPECT_EQ(bands[5].os, "FreeBSD");
  EXPECT_EQ(bands[6].os, "Linux");
  EXPECT_EQ(bands[7].os, "Full Port Range");
  // Bands tile [0, 65536] without gaps or overlap.
  EXPECT_EQ(bands.front().lo, 0);
  EXPECT_EQ(bands.back().hi, 65536);
  for (std::size_t i = 1; i < bands.size(); ++i) {
    EXPECT_EQ(bands[i].lo, bands[i - 1].hi + 1);
  }
}

struct BandCase {
  int range;
  std::size_t band;
};

class BandClassification : public ::testing::TestWithParam<BandCase> {};

TEST_P(BandClassification, EdgesExact) {
  EXPECT_EQ(classify_range(GetParam().range), GetParam().band);
}

INSTANTIATE_TEST_SUITE_P(
    Edges, BandClassification,
    ::testing::Values(BandCase{0, 0}, BandCase{1, 1}, BandCase{200, 1},
                      BandCase{201, 2}, BandCase{940, 2}, BandCase{941, 3},
                      BandCase{2488, 3}, BandCase{2489, 4}, BandCase{6124, 4},
                      BandCase{6125, 5}, BandCase{16331, 5},
                      BandCase{16332, 6}, BandCase{28222, 6},
                      BandCase{28223, 7}, BandCase{65535, 7},
                      BandCase{65536, 7}));

}  // namespace
