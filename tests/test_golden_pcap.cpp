// Golden wire-capture regression: a fixed-seed mini campaign must keep
// producing, byte for byte, the pcap + sidecar index checked in under
// tests/fixtures/. The fixture pins the *entire* wire surface of the
// pipeline — every packet the campaign puts on the wire, its exact bytes,
// its delivery timestamp, and its filtering fate — so any change to probing
// order, source selection, wire encoding, latency, or border filtering
// shows up as a fixture diff.
//
// An intentional behaviour change legitimately moves the fixture: rerun
// with CD_GOLDEN_WRITE=1 to regenerate tests/fixtures/quickstart.pcap and
// .idx, then eyeball the diff (tcpdump -r works on the .pcap) before
// committing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "ditl/world.h"
#include "util/pcap.h"

namespace {

constexpr std::uint64_t kSeed = 42;
constexpr int kAsns = 6;  // keeps the checked-in fixture small

std::string fixture_path(const char* name) {
  return std::string(CD_FIXTURE_DIR) + "/" + name;
}

cd::ditl::WorldSpec fixture_spec() {
  cd::ditl::WorldSpec spec = cd::ditl::small_world_spec();
  spec.n_asns = kAsns;
  spec.seed = kSeed;
  return spec;
}

cd::core::ExperimentConfig fixture_config() {
  cd::core::ExperimentConfig config;
  cd::core::CaptureSpec capture;
  capture.include_drops = true;  // drops are half the paper's story
  config.capture = capture;
  return config;
}

/// The fixture campaign: serial, full capture with drop annotations.
cd::pcap::Capture run_fixture_campaign() {
  const auto sharded =
      cd::core::run_sharded_experiment(fixture_spec(), fixture_config());
  return sharded.merged.capture;
}

TEST(GoldenPcap, FixtureMatchesByteForByte) {
  const cd::pcap::Capture capture = run_fixture_campaign();
  ASSERT_FALSE(capture.records.empty()) << "campaign produced no traffic";
  const std::vector<std::uint8_t> pcap_bytes = capture.to_pcap();
  const std::vector<std::uint8_t> index_bytes = capture.to_index();

  if (std::getenv("CD_GOLDEN_WRITE") != nullptr) {
    cd::pcap::write_file(fixture_path("quickstart.pcap"), pcap_bytes);
    cd::pcap::write_file(fixture_path("quickstart.pcap.idx"), index_bytes);
    GTEST_SKIP() << "regenerated fixture (" << pcap_bytes.size()
                 << " pcap bytes, " << capture.records.size() << " records)";
  }

  const auto golden_pcap =
      cd::pcap::read_file(fixture_path("quickstart.pcap"));
  const auto golden_index =
      cd::pcap::read_file(fixture_path("quickstart.pcap.idx"));
  // EXPECT_EQ on the vectors would dump kilobytes of bytes on mismatch;
  // compare sizes first and report only the first differing offset.
  ASSERT_EQ(pcap_bytes.size(), golden_pcap.size());
  ASSERT_EQ(index_bytes.size(), golden_index.size());
  for (std::size_t i = 0; i < pcap_bytes.size(); ++i) {
    ASSERT_EQ(pcap_bytes[i], golden_pcap[i]) << "pcap differs at offset " << i;
  }
  for (std::size_t i = 0; i < index_bytes.size(); ++i) {
    ASSERT_EQ(index_bytes[i], golden_index[i])
        << "index differs at offset " << i;
  }
}

TEST(GoldenPcap, FixtureParsesAndCrossValidates) {
  if (std::getenv("CD_GOLDEN_WRITE") != nullptr) {
    GTEST_SKIP() << "fixture being regenerated";
  }
  const auto golden_pcap =
      cd::pcap::read_file(fixture_path("quickstart.pcap"));
  const auto golden_index =
      cd::pcap::read_file(fixture_path("quickstart.pcap.idx"));
  // The strict reader accepts the pair, and what it reads is exactly the
  // capture the campaign produces — record contents and annotations, not
  // just serialized bytes.
  const cd::pcap::Capture parsed =
      cd::pcap::Capture::parse(golden_pcap, golden_index);
  const cd::pcap::Capture regenerated = run_fixture_campaign();
  ASSERT_EQ(parsed.records.size(), regenerated.records.size());
  EXPECT_TRUE(parsed == regenerated);
  EXPECT_EQ(cd::core::capture_digest(parsed),
            cd::core::capture_digest(regenerated));
}

TEST(GoldenPcap, RegenerationIsDeterministic) {
  // Two independent runs (fresh world, fresh event loop) must serialize
  // identically — the fixture is reproducible from the seed alone.
  const cd::pcap::Capture first = run_fixture_campaign();
  const cd::pcap::Capture second = run_fixture_campaign();
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.to_pcap(), second.to_pcap());
  EXPECT_EQ(first.to_index(), second.to_index());
}

}  // namespace
