// Unit tests: routing table (LPM) and topology.
#include <gtest/gtest.h>

#include "sim/topology.h"
#include "util/error.h"

namespace {

using namespace cd;
using net::IpAddr;
using net::Prefix;
using sim::Topology;

TEST(RoutingTable, LongestPrefixWins) {
  sim::RoutingTable routes;
  routes.add(Prefix::must_parse("10.0.0.0/8"), 100);
  routes.add(Prefix::must_parse("10.1.0.0/16"), 200);
  routes.add(Prefix::must_parse("10.1.2.0/24"), 300);

  EXPECT_EQ(routes.lookup(IpAddr::must_parse("10.1.2.3")), 300u);
  EXPECT_EQ(routes.lookup(IpAddr::must_parse("10.1.9.9")), 200u);
  EXPECT_EQ(routes.lookup(IpAddr::must_parse("10.200.0.1")), 100u);
  EXPECT_FALSE(routes.lookup(IpAddr::must_parse("11.0.0.1")));
}

TEST(RoutingTable, LookupPrefixReturnsMatch) {
  sim::RoutingTable routes;
  routes.add(Prefix::must_parse("192.0.2.0/24"), 5);
  const auto p = routes.lookup_prefix(IpAddr::must_parse("192.0.2.200"));
  ASSERT_TRUE(p);
  EXPECT_EQ(*p, Prefix::must_parse("192.0.2.0/24"));
}

TEST(RoutingTable, V6Lpm) {
  sim::RoutingTable routes;
  routes.add(Prefix::must_parse("2001:db8::/32"), 1);
  routes.add(Prefix::must_parse("2001:db8:1::/48"), 2);
  EXPECT_EQ(routes.lookup(IpAddr::must_parse("2001:db8:1::5")), 2u);
  EXPECT_EQ(routes.lookup(IpAddr::must_parse("2001:db8:2::5")), 1u);
  EXPECT_FALSE(routes.lookup(IpAddr::must_parse("2001:db9::1")));
}

TEST(RoutingTable, FamiliesAreSeparate) {
  sim::RoutingTable routes;
  routes.add(Prefix::must_parse("::/0"), 6);
  EXPECT_FALSE(routes.lookup(IpAddr::must_parse("1.2.3.4")));
  EXPECT_EQ(routes.lookup(IpAddr::must_parse("abcd::1")), 6u);
}

TEST(RoutingTable, LaterAnnouncementWins) {
  sim::RoutingTable routes;
  routes.add(Prefix::must_parse("10.0.0.0/8"), 1);
  routes.add(Prefix::must_parse("10.0.0.0/8"), 2);
  EXPECT_EQ(routes.lookup(IpAddr::must_parse("10.0.0.1")), 2u);
  EXPECT_EQ(routes.size(), 1u);
}

TEST(Topology, AnnounceAndLookup) {
  Topology topo;
  topo.add_as(100);
  topo.announce(100, Prefix::must_parse("20.0.0.0/16"));
  topo.announce(100, Prefix::must_parse("2400:1::/32"));
  EXPECT_EQ(topo.asn_of(IpAddr::must_parse("20.0.5.5")), 100u);
  EXPECT_EQ(topo.asn_of(IpAddr::must_parse("2400:1::9")), 100u);
  EXPECT_EQ(topo.prefixes_of(100, net::IpFamily::kV4).size(), 1u);
  EXPECT_EQ(topo.prefixes_of(100, net::IpFamily::kV6).size(), 1u);
  EXPECT_TRUE(topo.prefixes_of(999, net::IpFamily::kV4).empty());
}

TEST(Topology, AnnounceUnknownAsnThrows) {
  Topology topo;
  EXPECT_THROW(topo.announce(5, Prefix::must_parse("10.0.0.0/8")),
               InvariantError);
}

TEST(Topology, IsInternalFollowsRouting) {
  Topology topo;
  topo.add_as(1);
  topo.add_as(2);
  topo.announce(1, Prefix::must_parse("20.0.0.0/16"));
  topo.announce(2, Prefix::must_parse("20.1.0.0/16"));
  EXPECT_TRUE(topo.is_internal(1, IpAddr::must_parse("20.0.0.1")));
  EXPECT_FALSE(topo.is_internal(1, IpAddr::must_parse("20.1.0.1")));
  EXPECT_FALSE(topo.is_internal(1, IpAddr::must_parse("192.168.0.1")));
}

TEST(Topology, AddAsIdempotent) {
  Topology topo;
  sim::AsInfo& a = topo.add_as(7, sim::FilterPolicy{.osav = true});
  sim::AsInfo& b = topo.add_as(7, sim::FilterPolicy{});  // policy not reset
  EXPECT_EQ(&a, &b);
  EXPECT_TRUE(b.policy.osav);
  EXPECT_EQ(topo.as_count(), 1u);
}

}  // namespace
