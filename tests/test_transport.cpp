// Persistent-transport battery: RFC 7766 session reuse and pipelining,
// idle-timeout edge semantics (an exchange landing exactly on the idle
// deadline loses to the close; one tick earlier survives; reuse after a
// server close falls back to a fresh dial), DoT-style handshake cost, the
// one-shot fallback, the spill codec's transport plane, and the campaign
// differential proving per-target reply bytes identical between the
// one-shot baseline and the persistent transport across seeds, shard
// counts, streamed worlds and disk spills — while dial (SYN) counts drop.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "core/spill.h"
#include "ditl/world.h"
#include "net/packet.h"
#include "scanner/followup.h"
#include "sim/host.h"
#include "sim/network.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace cd;
using net::IpAddr;
using net::Packet;
using sim::Host;
using sim::Network;
using sim::SimTime;
using sim::TransportCounters;
using sim::TransportOptions;

/// A 2-byte big-endian length prefix over `body`, gather-framed the way the
/// resolver frames DNS-over-TCP messages.
cd::GatherBuf framed(std::vector<std::uint8_t> body) {
  cd::GatherBuf g(std::move(body));
  const std::uint8_t prefix[2] = {
      static_cast<std::uint8_t>(g.body.size() >> 8),
      static_cast<std::uint8_t>(g.body.size())};
  g.set_header(prefix);
  return g;
}

/// A framed pseudo-DNS message whose first two body bytes carry `id` (the
/// bytes Host::tcp_query matches responses by).
cd::GatherBuf framed_msg(std::uint16_t id, std::size_t extra = 16,
                         std::uint8_t salt = 0) {
  std::vector<std::uint8_t> body;
  body.push_back(static_cast<std::uint8_t>(id >> 8));
  body.push_back(static_cast<std::uint8_t>(id));
  for (std::size_t i = 0; i < extra; ++i) {
    body.push_back(static_cast<std::uint8_t>(salt + i * 7));
  }
  return framed(std::move(body));
}

std::uint16_t framed_id(const std::vector<std::uint8_t>& framed_bytes) {
  if (framed_bytes.size() < 4) return 0;
  return static_cast<std::uint16_t>((framed_bytes[2] << 8) | framed_bytes[3]);
}

struct TransportFixture {
  sim::EventLoop loop;
  sim::Topology topology;
  Network network;
  std::optional<Host> client;
  std::optional<Host> server;
  IpAddr caddr = IpAddr::must_parse("21.0.0.5");
  IpAddr saddr = IpAddr::must_parse("22.0.0.1");

  explicit TransportFixture(TransportOptions transport, std::uint64_t seed = 7)
      : network(topology, loop, Rng(seed)) {
    topology.add_as(1);
    topology.add_as(2);
    topology.announce(1, net::Prefix::must_parse("21.0.0.0/16"));
    topology.announce(2, net::Prefix::must_parse("22.0.0.0/16"));
    network.set_transport(transport);
    client.emplace(network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
                   std::vector<IpAddr>{caddr}, Rng(seed + 1));
    server.emplace(network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
                   std::vector<IpAddr>{saddr}, Rng(seed + 2));
  }

  /// Session listener echoing each framed message's body back as the
  /// response (so the reply carries the request's message ID).
  void serve_echo() {
    server->tcp_listen_session(
        53, [](const sim::TcpConnInfo&, std::span<const std::uint8_t> msg,
               Host::TcpSessionReply reply) {
          ASSERT_GE(msg.size(), 2u);
          reply(framed({msg.begin() + 2, msg.end()}));
        });
  }
};

TransportOptions persistent_options() {
  TransportOptions t;
  t.persistent = true;
  return t;
}

// --- session reuse -----------------------------------------------------------

TEST(TransportSession, ReusesOneConnectionAcrossMessages) {
  TransportFixture f(persistent_options());
  f.serve_echo();

  std::vector<std::vector<std::uint8_t>> replies;
  // Three strictly sequential exchanges: each next query is issued from the
  // previous reply handler, so reuse (not pipelining) is what's exercised.
  std::function<void(std::uint16_t)> next = [&](std::uint16_t id) {
    f.client->tcp_query(f.caddr, f.saddr, 53, framed_msg(id),
                        [&, id](std::optional<std::vector<std::uint8_t>> r) {
                          ASSERT_TRUE(r.has_value());
                          replies.push_back(std::move(*r));
                          if (id < 0x1003) next(id + 1);
                        });
  };
  next(0x1001);
  f.loop.run();

  ASSERT_EQ(replies.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto expected =
        framed_msg(static_cast<std::uint16_t>(0x1001 + i)).to_vector();
    EXPECT_EQ(replies[i], expected);
  }
  const TransportCounters& c = f.client->transport_counters();
  EXPECT_EQ(c.dials, 1u);
  EXPECT_EQ(c.session_reuses, 2u);
  EXPECT_EQ(c.session_messages, 3u);
  const TransportCounters& s = f.server->transport_counters();
  EXPECT_EQ(s.accepts, 1u);
  EXPECT_EQ(s.idle_closes, 1u);  // server FIN after the 10s idle window
  // Network-wide aggregation sums the two hosts.
  const TransportCounters total = f.network.transport_counters();
  EXPECT_EQ(total.dials, 1u);
  EXPECT_EQ(total.accepts, 1u);
  EXPECT_EQ(total.session_messages, 3u);
  EXPECT_EQ(f.network.open_tcp_connections(), 0u);
}

// --- pipelining window + out-of-order responses ------------------------------

TEST(TransportSession, PipelineWindowCapsInFlightAndMatchesOutOfOrder) {
  TransportOptions t = persistent_options();
  t.max_pipeline = 2;
  TransportFixture f(t);

  // Deferred server: hold every reply; the test releases them in REVERSE
  // order, so responses come back out of order and the client must match
  // them to handlers by message ID.
  std::vector<std::pair<std::uint16_t, Host::TcpSessionReply>> held;
  f.server->tcp_listen_session(
      53, [&held](const sim::TcpConnInfo&, std::span<const std::uint8_t> msg,
                  Host::TcpSessionReply reply) {
        const std::uint16_t id =
            static_cast<std::uint16_t>((msg[2] << 8) | msg[3]);
        held.emplace_back(id, std::move(reply));
      });
  const auto release_held = [&held] {
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
      std::vector<std::uint8_t> body;
      body.push_back(static_cast<std::uint8_t>(it->first >> 8));
      body.push_back(static_cast<std::uint8_t>(it->first));
      it->second(framed(std::move(body)));
    }
    held.clear();
  };

  std::map<std::uint16_t, std::uint16_t> reply_ids;  // query id -> reply id
  for (std::uint16_t id = 0x2001; id <= 0x2005; ++id) {
    f.client->tcp_query(f.caddr, f.saddr, 53, framed_msg(id),
                        [&reply_ids, id](auto r) {
                          ASSERT_TRUE(r.has_value());
                          reply_ids[id] = framed_id(*r);
                        });
  }

  // The pipeline window admits exactly 2 in-flight messages per round: the
  // server holds 2, the other 3 wait in the client's queue.
  f.loop.schedule_at(1 * sim::kSecond, [&] {
    EXPECT_EQ(held.size(), 2u);
    release_held();
  });
  f.loop.schedule_at(2 * sim::kSecond, [&] {
    EXPECT_EQ(held.size(), 2u);  // freed slots admitted the next two
    release_held();
  });
  f.loop.schedule_at(3 * sim::kSecond, [&] {
    EXPECT_EQ(held.size(), 1u);
    release_held();
  });
  f.loop.run();

  ASSERT_EQ(reply_ids.size(), 5u);
  for (std::uint16_t id = 0x2001; id <= 0x2005; ++id) {
    EXPECT_EQ(reply_ids[id], id) << "reply matched to the wrong handler";
  }
  EXPECT_EQ(f.client->transport_counters().dials, 1u);
  EXPECT_EQ(f.client->transport_counters().session_messages, 5u);
  EXPECT_EQ(f.network.open_tcp_connections(), 0u);
}

// --- idle-timeout edges ------------------------------------------------------

constexpr SimTime kIdleWindow = 2 * sim::kSecond;

struct IdleRun {
  bool reply1_ok = false;
  std::optional<std::optional<std::vector<std::uint8_t>>> reply2;
  SimTime fin_time = -1;
  TransportCounters client;
  TransportCounters server;
};

/// One query at t=0 and (optionally) a second at `query2_at`, against a 2s
/// server idle window. Packet latencies are pure hashes of packet identity
/// (never of time), so timings measured in one run hold exactly in the next.
IdleRun run_idle(std::optional<SimTime> query2_at) {
  TransportOptions t = persistent_options();
  t.idle_timeout = kIdleWindow;
  TransportFixture f(t);
  f.serve_echo();

  IdleRun out;
  f.network.add_tap([&](const Packet& pkt, sim::DropReason, SimTime now) {
    if (pkt.src == f.saddr && pkt.tcp_flags.fin) out.fin_time = now;
  });

  f.client->tcp_query(f.caddr, f.saddr, 53, framed_msg(0x1111),
                      [&out](auto r) { out.reply1_ok = r.has_value(); });
  if (query2_at) {
    f.loop.schedule_at(*query2_at, [&f, &out] {
      f.client->tcp_query(f.caddr, f.saddr, 53, framed_msg(0x2222),
                          [&out](auto r) { out.reply2 = std::move(r); });
    });
  }
  f.loop.run();
  out.client = f.client->transport_counters();
  out.server = f.server->transport_counters();
  EXPECT_EQ(f.network.open_tcp_connections(), 0u);
  return out;
}

TEST(TransportIdle, DeadlineEdgesAndReuseAfterClose) {
  // Calibration A: only query 1. The server's FIN lands exactly one idle
  // window after the query's data arrived, which recovers that arrival time.
  const IdleRun a = run_idle(std::nullopt);
  ASSERT_TRUE(a.reply1_ok);
  ASSERT_GT(a.fin_time, 0);
  EXPECT_EQ(a.server.idle_closes, 1u);
  const SimTime activity1 = a.fin_time - kIdleWindow;
  const SimTime deadline = activity1 + kIdleWindow;

  // Calibration B: query 2 rides the live session at t=1s; its FIN-derived
  // arrival time recovers the one-way latency of query 2's data segment.
  const IdleRun b = run_idle(1 * sim::kSecond);
  ASSERT_TRUE(b.reply2.has_value());
  EXPECT_TRUE(b.reply2->has_value());
  const SimTime one_way = (b.fin_time - kIdleWindow) - 1 * sim::kSecond;
  ASSERT_GT(one_way, 0);

  // Edge 1: query 2's data arrives EXACTLY at the idle deadline. The idle
  // event was scheduled earlier in wall-clock than the delivery, so on the
  // shared tick the close runs first: the server is gone when the bytes
  // land, the FIN fails the in-flight message, and the FIN is stamped at
  // the deadline itself.
  const IdleRun exact = run_idle(deadline - one_way);
  ASSERT_TRUE(exact.reply1_ok);
  ASSERT_TRUE(exact.reply2.has_value());
  EXPECT_FALSE(exact.reply2->has_value()) << "close must win the tie";
  EXPECT_EQ(exact.fin_time, deadline);
  EXPECT_EQ(exact.client.dials, 1u);
  EXPECT_EQ(exact.client.session_reuses, 1u);
  EXPECT_EQ(exact.server.idle_closes, 1u);

  // Edge 2: the same request one tick earlier refreshes the idle window —
  // the session survives, the exchange completes, and the close slides a
  // full window past the new activity.
  const IdleRun early = run_idle(deadline - one_way - 1);
  ASSERT_TRUE(early.reply2.has_value());
  EXPECT_TRUE(early.reply2->has_value());
  EXPECT_EQ(early.fin_time, deadline - 1 + kIdleWindow);
  EXPECT_EQ(early.client.dials, 1u);
  EXPECT_EQ(early.server.idle_closes, 1u);

  // Edge 3: reuse AFTER the server closed falls back to a fresh dial — the
  // client's session index entry died with the FIN, so the late query
  // redials instead of writing into a dead stream.
  const IdleRun late = run_idle(deadline + 3 * kIdleWindow);
  ASSERT_TRUE(late.reply2.has_value());
  EXPECT_TRUE(late.reply2->has_value());
  EXPECT_EQ(late.client.dials, 2u);
  EXPECT_EQ(late.client.session_reuses, 0u);
  EXPECT_EQ(late.server.idle_closes, 2u);
}

TEST(TransportIdle, UnansweredReplyDefersThenForcesClose) {
  // A server application that never replies must not pin the session (or
  // the event loop) forever: the idle timer defers a bounded number of
  // times for the outstanding reply, then force-closes, failing the
  // client's message via the FIN.
  TransportOptions t = persistent_options();
  t.idle_timeout = 100 * sim::kMillisecond;
  TransportFixture f(t);
  f.server->tcp_listen_session(
      53, [](const sim::TcpConnInfo&, std::span<const std::uint8_t>,
             Host::TcpSessionReply) { /* never replies */ });

  std::optional<std::optional<std::vector<std::uint8_t>>> reply;
  f.client->tcp_query(f.caddr, f.saddr, 53, framed_msg(0x3333),
                      [&reply](auto r) { reply = std::move(r); });
  f.loop.run();

  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->has_value());
  EXPECT_EQ(f.server->transport_counters().idle_closes, 1u);
  EXPECT_EQ(f.network.open_tcp_connections(), 0u);
  EXPECT_EQ(f.loop.pending(), 0u);
}

// --- DoT-style sessions ------------------------------------------------------

TEST(TransportDot, HandshakePaysBytesAndSetupDelayOncePerConnection) {
  const auto run_one = [](bool dot, SimTime& first_reply_at,
                          TransportCounters& total) {
    TransportOptions t = persistent_options();
    t.dot = dot;
    TransportFixture f(t);
    f.serve_echo();
    SimTime second_reply_at = -1;
    f.client->tcp_query(f.caddr, f.saddr, 53, framed_msg(0x4001),
                        [&](auto r) {
                          ASSERT_TRUE(r.has_value());
                          first_reply_at = f.loop.now();
                          // Reuse: the second message must not pay the
                          // handshake again.
                          f.client->tcp_query(
                              f.caddr, f.saddr, 53, framed_msg(0x4002),
                              [&](auto r2) {
                                ASSERT_TRUE(r2.has_value());
                                second_reply_at = f.loop.now();
                              });
                        });
    f.loop.run();
    ASSERT_GT(second_reply_at, first_reply_at);
    total = f.network.transport_counters();
    EXPECT_EQ(f.network.open_tcp_connections(), 0u);
  };

  SimTime plain_at = -1;
  SimTime dot_at = -1;
  TransportCounters plain;
  TransportCounters dot;
  run_one(false, plain_at, plain);
  run_one(true, dot_at, dot);

  EXPECT_EQ(plain.handshake_bytes, 0u);
  // One connection, default 2 handshake round trips: each side sends one
  // 32-byte hello flight per round — and the reused second message adds
  // nothing.
  EXPECT_EQ(dot.dials, 1u);
  EXPECT_EQ(dot.handshake_bytes,
            (dot.dials + dot.accepts) * 2 * Host::kDotHelloBytes);
  // The handshake round trips plus the setup cost delay the first DNS byte.
  const TransportOptions defaults = persistent_options();
  EXPECT_GE(dot_at, plain_at + defaults.dot_setup_cost);
}

// --- one-shot fallback -------------------------------------------------------

TEST(TransportFallback, TcpQueryWithoutPersistenceIsExactlyOneShot) {
  TransportFixture f(TransportOptions{});  // persistent off (the default)
  f.serve_echo();

  std::optional<std::vector<std::uint8_t>> via_query;
  std::optional<std::vector<std::uint8_t>> via_connect;
  f.client->tcp_query(f.caddr, f.saddr, 53, framed_msg(0x5001),
                      [&](auto r) { via_query = std::move(r); });
  f.client->tcp_connect(f.caddr, f.saddr, 53, framed_msg(0x5001),
                        [&](auto r) { via_connect = std::move(r); });
  f.loop.run();

  ASSERT_TRUE(via_query.has_value());
  ASSERT_TRUE(via_connect.has_value());
  EXPECT_EQ(*via_query, *via_connect);
  const TransportCounters total = f.network.transport_counters();
  EXPECT_EQ(total.dials, 2u);  // one dial per message: no reuse off-knob
  EXPECT_EQ(total.session_reuses, 0u);
  EXPECT_EQ(total.session_messages, 0u);
  EXPECT_EQ(total.idle_closes, 0u);
  EXPECT_EQ(total.handshake_bytes, 0u);
  EXPECT_EQ(f.network.open_tcp_connections(), 0u);
}

// --- spill codec: transport plane -------------------------------------------

TEST(TransportSpill, RoundTripPreservesCountersAndReplyDigests) {
  core::ExperimentResults results;
  results.transport.dials = 7;
  results.transport.accepts = 6;
  results.transport.session_reuses = 41;
  results.transport.session_messages = 48;
  results.transport.idle_closes = 5;
  results.transport.handshake_bytes = 896;
  results.transport_replies[IpAddr::must_parse("10.1.2.3")] = 0xDEADBEEFull;
  results.transport_replies[IpAddr::must_parse("fd00::5")] = 0x1234567890ull;

  const std::vector<std::uint8_t> bytes = core::serialize_results(results);
  const core::ExperimentResults parsed = core::parse_results(bytes);
  EXPECT_TRUE(parsed.transport == results.transport);
  EXPECT_EQ(parsed.transport_replies, results.transport_replies);

  // Strictness extends through the new section: truncating inside it must
  // throw, never parse as partial results.
  const std::span<const std::uint8_t> half(bytes.data(), bytes.size() / 2);
  EXPECT_THROW((void)core::parse_results(half), cd::ParseError);
}

// --- campaign differential ---------------------------------------------------

ditl::WorldSpec camp_spec(std::uint64_t seed) {
  ditl::WorldSpec spec = ditl::small_world_spec();
  spec.n_asns = 6;
  spec.seed = seed;
  return spec;
}

core::ExperimentConfig camp_config(bool persistent, std::size_t shards,
                                   const std::string& spill_dir = {},
                                   bool stream = true) {
  core::ExperimentConfig config;
  config.followup.transport = scanner::FollowupTransport::kTcp;
  config.persistent_tcp = persistent;
  config.num_shards = shards;
  config.num_threads = shards > 1 ? 2 : 1;
  config.stream_worlds = stream;
  config.spill_dir = spill_dir;
  return config;
}

TEST(TransportCampaign, PersistentRepliesMatchOneShotWhileDialsDrop) {
  const auto spill =
      std::filesystem::temp_directory_path() / "cd_transport_spill";
  std::filesystem::create_directories(spill);

  for (const std::uint64_t seed : {7ULL, 42ULL, 99ULL}) {
    // One-shot baseline (persistent off): serial, and 4 shards with
    // streamed worlds + disk spill.
    const auto base1 =
        core::run_sharded_experiment(camp_spec(seed), camp_config(false, 1));
    const auto base4 = core::run_sharded_experiment(
        camp_spec(seed), camp_config(false, 4, spill.string()));
    // Persistent transport on: same layouts.
    const auto sess1 =
        core::run_sharded_experiment(camp_spec(seed), camp_config(true, 1));
    const auto sess4 = core::run_sharded_experiment(
        camp_spec(seed), camp_config(true, 4, spill.string()));

    ASSERT_FALSE(base1.merged.transport_replies.empty()) << "seed " << seed;

    // Per-target evidence is layout-invariant within each transport...
    EXPECT_EQ(core::results_digest(base1.merged),
              core::results_digest(base4.merged))
        << "seed " << seed;
    EXPECT_EQ(core::results_digest(sess1.merged),
              core::results_digest(sess4.merged))
        << "seed " << seed;
    // ...and invariant ACROSS transports: reply bytes per target are
    // identical whether each message dialed its own connection or rode a
    // pipelined session.
    EXPECT_EQ(base1.merged.transport_replies, base4.merged.transport_replies)
        << "seed " << seed;
    EXPECT_EQ(sess1.merged.transport_replies, sess4.merged.transport_replies)
        << "seed " << seed;
    EXPECT_EQ(sess1.merged.transport_replies, base1.merged.transport_replies)
        << "seed " << seed;
    // (results_digest is NOT compared across transports: connection reuse
    // legitimately thins SYN-derived fingerprint evidence and shifts
    // arrival timing, exactly like the documented sharding exclusions.)

    // Connection economics: the baseline never reuses; the persistent
    // transport collapses each target's battery onto few dials, so total
    // SYN counts drop measurably.
    EXPECT_EQ(base1.merged.transport.session_reuses, 0u);
    EXPECT_GT(sess1.merged.transport.session_reuses, 0u);
    EXPECT_GT(sess1.merged.transport.idle_closes, 0u);
    EXPECT_LT(sess1.merged.transport.dials * 2, base1.merged.transport.dials)
        << "seed " << seed;
    EXPECT_EQ(base1.merged.transport.handshake_bytes, 0u);
    EXPECT_EQ(sess1.merged.transport.handshake_bytes, 0u);
  }

  // One extra layout on one seed: materialized worlds, no spill — the
  // differential holds on that axis too.
  const auto sess4m = core::run_sharded_experiment(
      camp_spec(42), camp_config(true, 4, {}, /*stream=*/false));
  const auto sess1ref =
      core::run_sharded_experiment(camp_spec(42), camp_config(true, 1));
  EXPECT_EQ(core::results_digest(sess4m.merged),
            core::results_digest(sess1ref.merged));
  EXPECT_EQ(sess4m.merged.transport_replies, sess1ref.merged.transport_replies);

  std::filesystem::remove_all(spill);
}

TEST(TransportCampaign, DotSessionsPayHandshakeWithoutChangingReplies) {
  core::ExperimentConfig dot_config = camp_config(true, 1);
  dot_config.dot_sessions = true;
  const auto dot =
      core::run_sharded_experiment(camp_spec(42), dot_config);
  const auto plain =
      core::run_sharded_experiment(camp_spec(42), camp_config(true, 1));

  // The handshake is pure wire overhead: every per-target reply digest is
  // unchanged, but each dial (both sides) paid its hello flights.
  EXPECT_EQ(dot.merged.transport_replies, plain.merged.transport_replies);
  const TransportCounters& c = dot.merged.transport;
  EXPECT_GT(c.handshake_bytes, 0u);
  EXPECT_EQ(c.handshake_bytes,
            (c.dials + c.accepts) * 2 * Host::kDotHelloBytes);
}

}  // namespace
