// Unit tests: the unified wire codec (ByteReader/ByteWriter/BufferPool),
// randomized round-trip properties over Packet and DnsMessage, and a
// truncation fuzzer — every strict prefix of valid wire bytes must throw
// cd::ParseError, never crash or over-read (run under ASan by scripts/ci.sh).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dns/message.h"
#include "net/headers.h"
#include "net/packet.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace cd;
using dns::DnsMessage;
using dns::DnsName;
using dns::RrType;
using net::IpAddr;
using net::Packet;

// --- ByteReader -------------------------------------------------------------

TEST(ByteReader, BigEndianPrimitives) {
  const std::vector<std::uint8_t> data{0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC,
                                       0xDE};
  ByteReader r(data, "test");
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789ABCDEu);
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, BytesIsZeroCopySubspan) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  ByteReader r(data, "test");
  r.skip(1);
  const auto s = r.bytes(3);
  EXPECT_EQ(s.data(), data.data() + 1);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(ByteReader, PeekAndSeek) {
  const std::vector<std::uint8_t> data{7, 8, 9};
  ByteReader r(data, "test");
  EXPECT_EQ(r.peek_u8(), 7);
  EXPECT_EQ(r.pos(), 0u);
  r.seek(2);
  EXPECT_EQ(r.u8(), 9);
  r.seek(3);  // end is a valid position
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.seek(4), ParseError);
}

TEST(ByteReader, EveryOverReadThrowsParseError) {
  const std::vector<std::uint8_t> data{1, 2, 3};
  ByteReader r(data, "layer");
  r.skip(2);
  EXPECT_THROW(r.u16(), ParseError);
  EXPECT_THROW(r.u32(), ParseError);
  EXPECT_THROW(r.bytes(2), ParseError);
  EXPECT_THROW(r.skip(2), ParseError);
  EXPECT_EQ(r.pos(), 2u) << "failed reads must not advance the cursor";
  try {
    r.bytes(100);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("layer"), std::string::npos)
        << "error message should name the protocol layer";
  }
}

// --- ByteWriter -------------------------------------------------------------

TEST(ByteWriter, BigEndianAppend) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789ABCDEu);
  const std::vector<std::uint8_t> want{0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC,
                                       0xDE};
  EXPECT_EQ(out, want);
  EXPECT_EQ(w.size(), out.size());
}

TEST(ByteWriter, ReservePatchAndWritten) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u16(0xAAAA);
  const std::size_t pos = w.reserve_u16();
  w.u16(0xBBBB);
  w.patch_u16(pos, 0x1234);
  const std::vector<std::uint8_t> want{0xAA, 0xAA, 0x12, 0x34, 0xBB, 0xBB};
  EXPECT_EQ(out, want);
  EXPECT_EQ(w.written().size(), 6u);
  EXPECT_EQ(w.written(4).size(), 2u);
  EXPECT_EQ(w.written(4)[0], 0xBB);
}

TEST(ByteWriter, NestedWriterOffsetsAreBaseRelative) {
  // A writer constructed mid-buffer acts as if its message starts at offset
  // zero — the invariant TCP framing and DNS compression rely on.
  std::vector<std::uint8_t> out{0xFF, 0xFF};  // pre-existing prefix
  ByteWriter inner(out);
  EXPECT_EQ(inner.size(), 0u);
  const std::size_t pos = inner.reserve_u16();
  EXPECT_EQ(pos, 0u);
  inner.u8(0x55);
  inner.patch_u16(pos, 0xABCD);
  const std::vector<std::uint8_t> want{0xFF, 0xFF, 0xAB, 0xCD, 0x55};
  EXPECT_EQ(out, want);
  EXPECT_EQ(inner.size(), 3u);
}

// --- BufferPool -------------------------------------------------------------

TEST(BufferPool, RecyclesCapacityOnSameThread) {
  std::vector<std::uint8_t> buf = BufferPool::acquire();
  buf.assign(1000, 0x42);
  const std::uint8_t* data = buf.data();
  const std::size_t cap = buf.capacity();
  const std::size_t idle_before = BufferPool::idle_count();
  BufferPool::release(std::move(buf));
  EXPECT_EQ(BufferPool::idle_count(), idle_before + 1);

  std::vector<std::uint8_t> again = BufferPool::acquire();
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(again.capacity(), cap);
  EXPECT_EQ(again.data(), data) << "capacity should be recycled, not realloced";
  EXPECT_EQ(BufferPool::idle_count(), idle_before);
  BufferPool::release(std::move(again));
}

TEST(BufferPool, DropsUselessBuffers) {
  const std::size_t idle = BufferPool::idle_count();
  BufferPool::release(std::vector<std::uint8_t>{});  // no capacity to keep
  EXPECT_EQ(BufferPool::idle_count(), idle);

  std::vector<std::uint8_t> huge;
  huge.reserve(1 << 20);  // over the pool's per-buffer cap
  BufferPool::release(std::move(huge));
  EXPECT_EQ(BufferPool::idle_count(), idle);
}

// --- Randomized round-trips -------------------------------------------------

DnsName random_name(Rng& rng) {
  static const char* kLabels[] = {"a",   "bb",    "ccc", "dns-lab",
                                  "org", "probe", "x1",  "research"};
  const std::size_t depth = 1 + rng.uniform(4);
  std::string s;
  for (std::size_t i = 0; i < depth; ++i) {
    if (i) s += '.';
    s += kLabels[rng.uniform(std::size(kLabels))];
  }
  return DnsName::must_parse(s);
}

IpAddr random_addr(Rng& rng, bool v4) {
  if (v4) return IpAddr::v4(static_cast<std::uint32_t>(rng.u64()));
  return IpAddr::v6(rng.u64(), rng.u64());
}

dns::DnsRr random_rr(Rng& rng) {
  const DnsName name = random_name(rng);
  switch (rng.uniform(6)) {
    case 0: return dns::make_a(name, random_addr(rng, true));
    case 1: return dns::make_aaaa(name, random_addr(rng, false));
    case 2: return dns::make_ns(name, random_name(rng));
    case 3: return dns::make_cname(name, random_name(rng));
    case 4: return dns::make_txt(name, std::string(rng.uniform(300), 't'));
    default: {
      dns::SoaRdata soa;
      soa.mname = random_name(rng);
      soa.rname = random_name(rng);
      soa.serial = static_cast<std::uint32_t>(rng.u64());
      return dns::make_soa(name, soa);
    }
  }
}

DnsMessage random_message(Rng& rng) {
  DnsMessage m;
  m.header.id = static_cast<std::uint16_t>(rng.u64());
  m.header.qr = rng.chance(0.5);
  m.header.aa = rng.chance(0.5);
  m.header.rd = rng.chance(0.5);
  m.header.ra = rng.chance(0.5);
  m.header.rcode = rng.chance(0.3) ? dns::Rcode::kNxDomain
                                   : dns::Rcode::kNoError;
  const std::size_t qd = rng.uniform(3);
  for (std::size_t i = 0; i < qd; ++i) {
    m.questions.push_back({random_name(rng), RrType::kA});
  }
  const std::size_t an = rng.uniform(4);
  for (std::size_t i = 0; i < an; ++i) m.answers.push_back(random_rr(rng));
  const std::size_t ns = rng.uniform(3);
  for (std::size_t i = 0; i < ns; ++i) m.authorities.push_back(random_rr(rng));
  return m;
}

Packet random_packet(Rng& rng) {
  const bool v4 = rng.chance(0.5);
  std::vector<std::uint8_t> payload(rng.uniform(64));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.u64());
  if (rng.chance(0.5)) {
    return net::make_udp(random_addr(rng, v4),
                         static_cast<std::uint16_t>(rng.u64()),
                         random_addr(rng, v4),
                         static_cast<std::uint16_t>(rng.u64()),
                         std::move(payload),
                         static_cast<std::uint8_t>(1 + rng.uniform(255)));
  }
  Packet p = net::make_tcp(random_addr(rng, v4),
                           static_cast<std::uint16_t>(rng.u64()),
                           random_addr(rng, v4),
                           static_cast<std::uint16_t>(rng.u64()),
                           net::TcpFlags{.syn = rng.chance(0.5),
                                         .ack = rng.chance(0.5),
                                         .psh = rng.chance(0.5)},
                           std::move(payload),
                           static_cast<std::uint8_t>(1 + rng.uniform(255)));
  p.tcp_seq = static_cast<std::uint32_t>(rng.u64());
  p.tcp_ack = static_cast<std::uint32_t>(rng.u64());
  p.tcp_window = static_cast<std::uint16_t>(rng.u64());
  if (rng.chance(0.7)) {
    p.tcp_options = {{net::TcpOptionKind::kMss,
                      static_cast<std::uint32_t>(rng.uniform(0x10000))},
                     {net::TcpOptionKind::kSackPermitted, 0},
                     {net::TcpOptionKind::kNop, 0},
                     {net::TcpOptionKind::kWindowScale,
                      static_cast<std::uint32_t>(rng.uniform(15))}};
  }
  return p;
}

TEST(RoundTrip, RandomDnsMessages) {
  Rng rng(0xC0DEC);
  for (int i = 0; i < 200; ++i) {
    const DnsMessage m = random_message(rng);
    const auto wire = m.encode();
    const DnsMessage back = DnsMessage::decode(wire);
    ASSERT_EQ(back, m) << "iteration " << i;
    ASSERT_EQ(back.encode(), wire) << "re-encode must be byte-identical";
    ASSERT_EQ(dns::encode_pooled(m), wire)
        << "pooled encode must match unpooled";
  }
}

TEST(RoundTrip, RandomPackets) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 200; ++i) {
    const Packet p = random_packet(rng);
    const auto wire = p.serialize();
    const Packet back = Packet::parse(wire);
    ASSERT_EQ(back.serialize(), wire)
        << "iteration " << i << ": re-serialize must be byte-identical";
  }
}

// --- Truncation fuzz --------------------------------------------------------

// Every strict prefix of a valid wire encoding must throw ParseError: the
// codec may never crash, over-read (ASan would flag it), or silently accept
// a cut-off message.
template <typename ParseFn>
void expect_all_prefixes_throw(std::span<const std::uint8_t> wire,
                               ParseFn parse, const char* what) {
  for (std::size_t len = 0; len < wire.size(); ++len) {
    ASSERT_THROW(parse(wire.first(len)), ParseError)
        << what << ": prefix of length " << len << " of " << wire.size();
  }
}

TEST(TruncationFuzz, DnsMessagePrefixes) {
  Rng rng(0xF00D);
  for (int i = 0; i < 50; ++i) {
    DnsMessage m = random_message(rng);
    if (m.questions.empty() && m.answers.empty() && m.authorities.empty()) {
      m.questions.push_back({random_name(rng), RrType::kA});
    }
    const auto wire = m.encode();
    expect_all_prefixes_throw(
        wire, [](std::span<const std::uint8_t> s) { DnsMessage::decode(s); },
        "DnsMessage");
  }
}

TEST(TruncationFuzz, PacketPrefixes) {
  Rng rng(0xFEED);
  for (int i = 0; i < 50; ++i) {
    const auto wire = random_packet(rng).serialize();
    expect_all_prefixes_throw(
        wire, [](std::span<const std::uint8_t> s) { Packet::parse(s); },
        "Packet");
  }
}

TEST(TruncationFuzz, MutatedPacketsThrowParseErrorOrParse) {
  // Bit-flipped packets must either parse or throw ParseError — no other
  // exception type, no crash. (Most flips break the IP checksum.)
  Rng rng(0xD00D);
  for (int i = 0; i < 200; ++i) {
    auto wire = random_packet(rng).serialize();
    const std::size_t n = 1 + rng.uniform(4);
    for (std::size_t j = 0; j < n; ++j) {
      wire[rng.uniform(wire.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    try {
      (void)Packet::parse(wire);
    } catch (const ParseError&) {
      // expected for most mutations
    }
  }
}

TEST(TruncationFuzz, MutatedDnsMessagesThrowParseErrorOrParse) {
  Rng rng(0xDAB);
  for (int i = 0; i < 200; ++i) {
    auto wire = random_message(rng).encode();
    if (wire.empty()) continue;
    const std::size_t n = 1 + rng.uniform(4);
    for (std::size_t j = 0; j < n; ++j) {
      wire[rng.uniform(wire.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    try {
      (void)DnsMessage::decode(wire);
    } catch (const ParseError&) {
      // expected; anything else propagates and fails the test
    }
  }
}

// --- Malformed-input regressions --------------------------------------------

TEST(Malformed, DnsCompressionPointerLoop) {
  // qd=1; the qname at offset 12 is a pointer to itself.
  const std::vector<std::uint8_t> self{0, 0, 0, 0, 0, 1, 0, 0,
                                       0, 0, 0, 0, 0xC0, 0x0C};
  EXPECT_THROW(DnsMessage::decode(self), ParseError);

  // Two pointers chasing each other (12 -> 14 -> 12).
  const std::vector<std::uint8_t> pair{0, 0, 0, 0, 0, 1, 0, 0,
                                       0, 0, 0, 0, 0xC0, 0x0E, 0xC0, 0x0C};
  EXPECT_THROW(DnsMessage::decode(pair), ParseError);
}

TEST(Malformed, TcpOptionRunsPastHeaderLength) {
  // 24-byte header (data offset 6); the MSS option claims 8 bytes but only
  // 4 option bytes exist inside the header.
  std::vector<std::uint8_t> hdr{
      0x30, 0x39, 0x00, 0x35,              // ports
      0, 0, 0, 1,                          // seq
      0, 0, 0, 0,                          // ack
      0x60, 0x02, 0x72, 0x10,              // offset 6, SYN, window
      0x00, 0x00, 0x00, 0x00,              // checksum, urgent
      0x02, 0x08, 0x05, 0xB4,              // MSS with bogus len 8
  };
  EXPECT_THROW(net::TcpHeader::parse(hdr), ParseError);

  // Option kind in the last header byte: no room for its length octet.
  hdr[20] = 1;  // NOP
  hdr[21] = 1;  // NOP
  hdr[22] = 1;  // NOP
  hdr[23] = 2;  // MSS kind, then the header ends
  EXPECT_THROW(net::TcpHeader::parse(hdr), ParseError);
}

TEST(Malformed, Ipv4TotalLengthSmallerThanHeader) {
  // A consistent 20-byte v4 header (checksum valid) whose total_length
  // claims fewer bytes than the header itself.
  net::Ipv4Header ip;
  ip.total_length = 10;
  ip.ttl = 64;
  ip.protocol = net::IpProto::kUdp;
  ip.src = IpAddr::must_parse("192.0.2.1");
  ip.dst = IpAddr::must_parse("198.51.100.2");
  const auto wire = ip.serialize();
  EXPECT_THROW(Packet::parse(wire), ParseError);
}

TEST(Malformed, RdataNameOverrunsRdlength) {
  // an=1; an NS record whose RDLENGTH is 1 but whose rdata name occupies
  // 3 bytes of the message.
  const std::vector<std::uint8_t> wire{
      0, 0, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0,  // header: qr, an=1
      0,                                      // owner: root
      0, 2, 0, 1,                             // type NS, class IN
      0, 0, 0, 0,                             // ttl
      0, 1,                                   // RDLENGTH = 1
      1, 'a', 0,                              // name "a." (3 bytes)
  };
  EXPECT_THROW(DnsMessage::decode(wire), ParseError);
}

TEST(Malformed, UdpLengthFieldInconsistent) {
  net::Packet p = net::make_udp(IpAddr::must_parse("192.0.2.1"), 1234,
                                IpAddr::must_parse("198.51.100.2"), 53,
                                {1, 2, 3, 4});
  auto wire = p.serialize();
  // Shrink the UDP length field below the 8-byte header minimum.
  wire[20 + 4] = 0;
  wire[20 + 5] = 7;
  EXPECT_THROW(Packet::parse(wire), ParseError);
}

}  // namespace
