// Fuzz-style tests for the Internet checksum's SIMD widening: the vector
// path (detail::be_word_sum, AVX2 where the CPU has it) must agree with the
// scalar reference fold on every input — random buffers across the
// dispatch-threshold sizes, streams split into chains at odd byte offsets,
// and real captured wire bytes from the golden pcap fixture.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/checksum.h"
#include "util/bytes.h"
#include "util/pcap.h"
#include "util/rng.h"

namespace {

using namespace cd;
using net::Checksum;
using net::detail::be_word_sum;
using net::detail::be_word_sum_scalar;
using net::detail::fold16;

/// Byte-at-a-time reference: completely independent of both production
/// paths (no word loop, no SIMD) — RFC 1071's definition, literally.
std::uint16_t naive_checksum(std::span<const std::uint8_t> data) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t byte = data[i];
    sum += (i % 2 == 0) ? byte << 8 : byte;
  }
  while ((sum >> 16) != 0) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::vector<std::uint8_t> random_buffer(Rng& rng, std::size_t size) {
  std::vector<std::uint8_t> buf(size);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform(256));
  return buf;
}

TEST(ChecksumSimd, VectorFoldMatchesScalarFoldOnRandomBuffers) {
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 400; ++trial) {
    // Sizes straddle the SIMD engagement threshold (64) and the 32-byte
    // vector-width remainder handling, up to a few KiB.
    const std::size_t size = trial < 130
                                 ? static_cast<std::size_t>(trial)
                                 : rng.uniform(8192);
    const auto buf = random_buffer(rng, size);
    EXPECT_EQ(fold16(be_word_sum(buf)), fold16(be_word_sum_scalar(buf)))
        << "size=" << size << " trial=" << trial;
    EXPECT_EQ(net::internet_checksum(buf), naive_checksum(buf))
        << "size=" << size << " trial=" << trial;
  }
}

TEST(ChecksumSimd, AllZerosAndAllOnesEdgeCases) {
  // sum == 0 vs sum ≡ 0 (mod 0xFFFF) is the classic fold-representative
  // trap: ~0 = 0xFFFF for the empty sum, 0x0000 for a wrapped-to-0xFFFF one.
  for (const std::size_t size : {0u, 2u, 32u, 64u, 96u, 4096u}) {
    const std::vector<std::uint8_t> zeros(size, 0x00);
    EXPECT_EQ(net::internet_checksum(zeros), 0xFFFF) << "size=" << size;
    const std::vector<std::uint8_t> ones(size, 0xFF);
    EXPECT_EQ(net::internet_checksum(ones), size == 0 ? 0xFFFF : 0x0000)
        << "size=" << size;
  }
}

TEST(ChecksumStream, RandomChainSplitsMatchMonolithicSum) {
  // A logical stream fed through add_stream in arbitrarily-split pieces —
  // odd-length cuts force the pending-byte pairing across every boundary —
  // must equal one add() over the concatenation.
  Rng rng(0x5EED5);
  for (int trial = 0; trial < 300; ++trial) {
    const auto buf = random_buffer(rng, 1 + rng.uniform(4096));
    Checksum whole;
    whole.add(buf);

    Checksum pieces;
    std::size_t offset = 0;
    while (offset < buf.size()) {
      // Bias towards small odd chunks; occasionally a big SIMD-width one.
      const std::size_t remaining = buf.size() - offset;
      const std::size_t chunk = std::min(
          remaining,
          rng.uniform(4) == 0 ? 1 + rng.uniform(512) : 1 + rng.uniform(7));
      pieces.add_stream(std::span(buf).subspan(offset, chunk));
      offset += chunk;
    }
    EXPECT_EQ(pieces.finish(), whole.finish()) << "trial=" << trial;
  }
}

TEST(ChecksumStream, ConstSpansChainMatchesConcatenation) {
  Rng rng(0xABCD);
  for (int trial = 0; trial < 200; ++trial) {
    // Up to kMaxSpans pieces with odd sizes; sum via the chain overload.
    std::vector<std::vector<std::uint8_t>> parts;
    std::vector<std::uint8_t> concat;
    ConstSpans chain;
    const std::size_t n = 1 + rng.uniform(ConstSpans::kMaxSpans);
    for (std::size_t i = 0; i < n; ++i) {
      parts.push_back(random_buffer(rng, rng.uniform(600)));
      concat.insert(concat.end(), parts.back().begin(), parts.back().end());
    }
    for (const auto& p : parts) chain.add(p);

    Checksum chained;
    chained.add_stream(chain);
    Checksum whole;
    whole.add(concat);
    EXPECT_EQ(chained.finish(), whole.finish()) << "trial=" << trial;
  }
}

TEST(ChecksumSimd, GoldenPcapBytesDifferential) {
  // Real wire bytes (every quickstart campaign packet, headers included):
  // slide windows of varying size and alignment over the capture and demand
  // SIMD/scalar agreement on each.
  const auto pcap =
      cd::pcap::read_file(std::string(CD_FIXTURE_DIR) + "/quickstart.pcap");
  ASSERT_GT(pcap.size(), 1024u);
  const std::span<const std::uint8_t> bytes(pcap);
  Rng rng(2020);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t offset = rng.uniform(pcap.size() - 1);
    const std::size_t len =
        std::min(pcap.size() - offset, 1 + rng.uniform(2048));
    const auto window = bytes.subspan(offset, len);
    EXPECT_EQ(fold16(be_word_sum(window)), fold16(be_word_sum_scalar(window)))
        << "offset=" << offset << " len=" << len;
    EXPECT_EQ(net::internet_checksum(window), naive_checksum(window))
        << "offset=" << offset << " len=" << len;
  }
}

}  // namespace
