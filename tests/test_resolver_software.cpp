// Unit tests: software profiles and their default allocators (Table 5).
#include <gtest/gtest.h>

#include <set>

#include "resolver/software.h"
#include "sim/os_model.h"

namespace {

using namespace cd;
using namespace cd::resolver;

struct SoftwareCase {
  DnsSoftware software;
  sim::OsId os;
  // Expectations on 5,000 draws:
  std::size_t min_unique;
  std::size_t max_unique;
  std::uint16_t lo;  // all ports >= lo
  std::uint16_t hi;  // all ports <= hi
};

class DefaultAllocator : public ::testing::TestWithParam<SoftwareCase> {};

TEST_P(DefaultAllocator, MatchesTable5Behaviour) {
  const SoftwareCase& c = GetParam();
  auto alloc = make_default_allocator(c.software, sim::os_profile(c.os),
                                      Rng(1234));
  std::set<std::uint16_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint16_t p = alloc->next();
    ASSERT_GE(p, c.lo);
    ASSERT_LE(p, c.hi);
    seen.insert(p);
  }
  EXPECT_GE(seen.size(), c.min_unique);
  EXPECT_LE(seen.size(), c.max_unique);
}

INSTANTIATE_TEST_SUITE_P(
    Table5, DefaultAllocator,
    ::testing::Values(
        // BIND 9.5.0: 8 ports, selected at startup.
        SoftwareCase{DnsSoftware::kBind950, sim::OsId::kUbuntu1904, 2, 8,
                     1024, 65535},
        // Full-unprivileged-range implementations.
        SoftwareCase{DnsSoftware::kBind952To988, sim::OsId::kUbuntu1904, 3000,
                     5000, 1024, 65535},
        SoftwareCase{DnsSoftware::kUnbound190, sim::OsId::kFreeBsd121, 3000,
                     5000, 1024, 65535},
        SoftwareCase{DnsSoftware::kPowerDns420, sim::OsId::kWin2016, 3000,
                     5000, 1024, 65535},
        // OS-default implementations inherit the ephemeral range.
        SoftwareCase{DnsSoftware::kBind9913To9160, sim::OsId::kUbuntu1904,
                     3000, 5000, 32768, 61000},
        SoftwareCase{DnsSoftware::kBind9913To9160, sim::OsId::kFreeBsd121,
                     3000, 5000, 49152, 65535},
        SoftwareCase{DnsSoftware::kKnot321, sim::OsId::kUbuntu1904, 3000,
                     5000, 32768, 61000},
        // Single fixed port.
        SoftwareCase{DnsSoftware::kWindowsDns2003, sim::OsId::kWin2003, 1, 1,
                     1024, 65535},
        SoftwareCase{DnsSoftware::kBind8, sim::OsId::kUbuntu1004, 1, 1, 53,
                     53},
        SoftwareCase{DnsSoftware::kFixedMisconfig, sim::OsId::kUbuntu1904, 1,
                     1, 53, 65535},
        // Windows DNS 2008 R2+: 2,500-port pool inside the IANA range.
        SoftwareCase{DnsSoftware::kWindowsDns2008R2, sim::OsId::kWin2012,
                     2000, 2500, 49152, 65535},
        // Legacy misbehaviours: narrow spans.
        SoftwareCase{DnsSoftware::kLegacySequential, sim::OsId::kEmbeddedCpe,
                     21, 201, 1024, 65535},
        SoftwareCase{DnsSoftware::kLegacySmallPool, sim::OsId::kEmbeddedCpe,
                     2, 7, 1024, 65535}));

TEST(SoftwareProfiles, AllRegistered) {
  EXPECT_GE(all_software_profiles().size(), 12u);
  for (const SoftwareProfile& p : all_software_profiles()) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_EQ(&software_profile(p.id), &p);
    EXPECT_FALSE(default_pool_description(p.id).empty());
  }
}

TEST(SoftwareProfiles, KnotMinimizesStrictly) {
  EXPECT_EQ(software_profile(DnsSoftware::kKnot321).qmin, QminMode::kStrict);
  EXPECT_EQ(software_profile(DnsSoftware::kBind952To988).qmin, QminMode::kOff);
}

TEST(SoftwareProfiles, SequentialAllocatorWalksInOrder) {
  auto alloc = make_default_allocator(DnsSoftware::kLegacySequential,
                                      sim::os_profile(sim::OsId::kEmbeddedCpe),
                                      Rng(9));
  std::uint16_t prev = alloc->next();
  int decreases = 0;
  for (int i = 0; i < 300; ++i) {
    const std::uint16_t p = alloc->next();
    if (p < prev) ++decreases;
    prev = p;
  }
  // Walks upward, wrapping occasionally (span <= 200 over 300 draws -> at
  // least one wrap, each wrap is a single decrease).
  EXPECT_GE(decreases, 1);
  EXPECT_LE(decreases, 15);
}

TEST(OsProfiles, EphemeralRangesMatchPaper) {
  EXPECT_EQ(sim::os_profile(sim::OsId::kUbuntu1904).ephemeral_lo, 32768);
  EXPECT_EQ(sim::os_profile(sim::OsId::kUbuntu1904).ephemeral_hi, 61000);
  EXPECT_EQ(sim::os_profile(sim::OsId::kFreeBsd121).ephemeral_lo, 49152);
  EXPECT_EQ(sim::os_profile(sim::OsId::kFreeBsd121).ephemeral_hi, 65535);
  // Max observable ranges match §5.3.2: 28,232 / 16,383.
  EXPECT_EQ(61000 - 32768, 28232);
  EXPECT_EQ(65535 - 49152, 16383);
}

TEST(OsProfiles, RegistryConsistent) {
  for (const sim::OsProfile& p : sim::all_os_profiles()) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_LE(p.ephemeral_lo, p.ephemeral_hi);
    EXPECT_EQ(&sim::os_profile(p.id), &p);
    EXPECT_FALSE(p.fp.syn_options.empty());
  }
}

}  // namespace
