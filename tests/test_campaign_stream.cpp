// The bounded-memory campaign guarantees: streamed shard worlds and
// disk-spilled shard results must be invisible in the evidence — digests
// bit-identical to the materialized, all-in-memory path for every
// (seed, shards) tested — and the spill codec must be a strict round-trip
// that can never parse a truncated file as partial results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <random>
#include <set>
#include <string>

#include "core/parallel.h"
#include "core/spill.h"
#include "ditl/plan.h"
#include "ditl/target_stream.h"
#include "ditl/world.h"
#include "net/packet.h"
#include "scanner/prober.h"
#include "util/error.h"
#include "util/rss.h"

namespace {

using cd::core::capture_digest;
using cd::core::ExperimentConfig;
using cd::core::ExperimentResults;
using cd::core::results_digest;
using cd::core::run_sharded_experiment;
using cd::core::ShardedResults;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CD_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CD_SANITIZED 1
#endif
#endif

cd::ditl::WorldSpec test_spec(std::uint64_t seed) {
  cd::ditl::WorldSpec spec = cd::ditl::small_world_spec();
  spec.seed = seed;
  return spec;
}

ExperimentConfig test_config(std::size_t shards, bool stream,
                             const std::string& spill_dir = {}) {
  ExperimentConfig config;
  config.analyst = cd::scanner::AnalystConfig{};  // exercise the replay path
  config.capture = cd::core::CaptureSpec{};       // and the capture merge
  config.num_shards = shards;
  config.num_threads = shards > 1 ? 2 : 1;
  config.stream_worlds = stream;
  config.spill_dir = spill_dir;
  return config;
}

// --- streamed-vs-materialized equivalence -----------------------------------

TEST(CampaignStream, StreamedWorldsMatchMaterializedDigests) {
  for (const std::uint64_t seed :
       {std::uint64_t{42}, std::uint64_t{1337}, std::uint64_t{9001}}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      const ShardedResults materialized = run_sharded_experiment(
          test_spec(seed), test_config(shards, /*stream=*/false));
      const ShardedResults streamed = run_sharded_experiment(
          test_spec(seed), test_config(shards, /*stream=*/true));
      ASSERT_GT(materialized.merged.records.size(), 0u);
      EXPECT_EQ(results_digest(streamed.merged),
                results_digest(materialized.merged))
          << "seed=" << seed << " shards=" << shards;
      // Same shard partition either way, so even the *full* capture — probe
      // plane plus resolver traffic — must be byte-identical.
      EXPECT_EQ(capture_digest(streamed.merged.capture),
                capture_digest(materialized.merged.capture))
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(streamed.merged.queries_sent, materialized.merged.queries_sent);
      EXPECT_EQ(streamed.merged.records.size(),
                materialized.merged.records.size());
    }
  }
}

TEST(CampaignStream, ShardWorldsPartitionTheFullWorldsTargets) {
  const auto spec = test_spec(42);
  const auto full = cd::ditl::generate_world(spec);
  std::set<cd::net::IpAddr> full_targets;
  for (const auto& t : full->targets) full_targets.insert(t.addr);
  ASSERT_EQ(full_targets.size(), full->targets.size()) << "duplicate targets";

  const std::size_t n_shards = 4;
  std::set<cd::net::IpAddr> union_targets;
  for (std::size_t shard = 0; shard < n_shards; ++shard) {
    const auto world = cd::ditl::generate_world(spec, shard, n_shards);
    for (const auto& t : world->targets) {
      EXPECT_EQ(cd::scanner::shard_of(t.asn, n_shards), shard)
          << t.addr.to_string();
      const auto [it, inserted] = union_targets.insert(t.addr);
      EXPECT_TRUE(inserted) << "target in two shards: " << t.addr.to_string();
    }
  }
  EXPECT_EQ(union_targets, full_targets);
}

TEST(CampaignStream, ShardWorldIsSmallerThanTheFullWorld) {
  const auto spec = test_spec(42);
  const auto full = cd::ditl::generate_world(spec);
  const auto shard = cd::ditl::generate_world(spec, 0, 8);
  // An eighth of the ASes' fleets plus shared infra: well under half.
  EXPECT_LT(shard->resolvers.size(), full->resolvers.size() / 2);
  EXPECT_LT(shard->targets.size(), full->targets.size() / 2);
  // But the routing/truth layers still cover every AS — packets to foreign
  // prefixes must route (and drop at the stack), not vanish as unrouted.
  EXPECT_EQ(shard->topology.as_count(), full->topology.as_count());
}

TEST(CampaignStream, StreamCountsMatchTheMaterializedWorld) {
  const auto spec = test_spec(42);
  const auto plan = cd::ditl::build_campaign_plan(spec);
  const auto counts = cd::ditl::count_stream(*plan);
  const auto full = cd::ditl::generate_world(spec);
  EXPECT_EQ(counts.targets, full->targets.size());
  // The stream counts edge fleets only; the world additionally materializes
  // the shared public DNS services.
  EXPECT_EQ(counts.resolvers, full->resolvers.size() - cd::ditl::kNumPublicDns);
  // Sharded counts sum to the whole.
  cd::ditl::StreamCounts sum;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    const auto c = cd::ditl::count_stream(*plan, shard, 4);
    sum.ases += c.ases;
    sum.resolvers += c.resolvers;
    sum.targets += c.targets;
  }
  EXPECT_EQ(sum.ases, counts.ases);
  EXPECT_EQ(sum.resolvers, counts.resolvers);
  EXPECT_EQ(sum.targets, counts.targets);
}

// --- spill equivalence ------------------------------------------------------

TEST(CampaignSpill, SpilledCampaignMatchesInMemoryAndCleansUp) {
  const auto dir =
      std::filesystem::temp_directory_path() / "cd_spill_equiv_test";
  std::filesystem::remove_all(dir);
  for (const std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{1337}}) {
    const ShardedResults in_memory =
        run_sharded_experiment(test_spec(seed), test_config(4, true));
    const ShardedResults spilled = run_sharded_experiment(
        test_spec(seed), test_config(4, true, dir.string()));
    EXPECT_EQ(results_digest(spilled.merged), results_digest(in_memory.merged))
        << "seed=" << seed;
    EXPECT_EQ(capture_digest(spilled.merged.capture),
              capture_digest(in_memory.merged.capture))
        << "seed=" << seed;
    for (const auto& timing : spilled.shards) {
      EXPECT_GT(timing.spill_ms, 0.0) << "shard never spilled";
      EXPECT_GT(timing.peak_rss_kb, 0u);
    }
    // Spill files are consumed by the merge; nothing lingers on disk.
    ASSERT_TRUE(std::filesystem::exists(dir));
    EXPECT_TRUE(std::filesystem::is_empty(dir));
  }
  std::filesystem::remove_all(dir);
}

// --- spill codec round-trip and truncation safety ---------------------------

/// An ExperimentResults with every field and container populated, so the
/// round-trip exercises each codec branch.
ExperimentResults synthetic_results() {
  ExperimentResults r;
  cd::scanner::TargetRecord rec;
  rec.target = cd::net::IpAddr::v4(20, 0, 1, 2);
  rec.asn = 123;
  rec.sources_hit = {cd::net::IpAddr::v4(60, 0, 0, 1),
                     cd::net::IpAddr::must_parse("2620:60::1")};
  rec.categories_hit = {cd::scanner::SourceCategory::kOtherPrefix,
                        cd::scanner::SourceCategory::kPrivate};
  rec.first_hit_time = 1234567;
  rec.first_hit_source = cd::net::IpAddr::v4(60, 0, 0, 1);
  rec.direct_seen = true;
  rec.forwarded_seen = true;
  rec.forwarders_seen = {cd::net::IpAddr::v4(20, 0, 1, 99)};
  rec.client_in_target_as = true;
  rec.ports_v4 = {1024, 5353, 65535};
  rec.ports_v6 = {32768};
  rec.open_hit = true;
  rec.tcp_hit = true;
  rec.tcp_syn = cd::net::make_udp(cd::net::IpAddr::v4(60, 0, 0, 1), 4242,
                                  rec.target, 53, {1, 2, 3});
  r.records.emplace(rec.target, rec);

  cd::scanner::TargetRecord dark;  // never answered: optionals empty
  dark.target = cd::net::IpAddr::must_parse("2620:20::5");
  dark.asn = 456;
  r.records.emplace(dark.target, dark);

  r.collector_stats.entries_seen = 10;
  r.collector_stats.foreign = 1;
  r.collector_stats.excluded_lifetime = 2;
  r.collector_stats.qmin_partial = 3;
  r.qmin_asns = {101, 202};
  r.lifetime_excluded_targets = {cd::net::IpAddr::v4(20, 0, 1, 2)};
  r.network_stats.sent = 99;
  r.network_stats.delivered = 55;
  r.network_stats.delivery_batches = 44;
  r.network_stats.dropped_dsav = 7;
  r.network_stats.dropped_no_host = 37;
  r.queries_sent = 400;
  r.followup_batteries = 5;
  r.analyst_replays = 6;

  cd::scanner::PrefixRecord full24;  // cross-check plane: a vulnerable /24
  full24.prefix = cd::net::IpAddr::v4(20, 0, 1, 0);
  full24.asn = 123;
  full24.responding = {cd::net::IpAddr::v4(20, 0, 1, 50),
                       cd::net::IpAddr::v4(20, 0, 1, 51)};
  full24.hits = 9;
  full24.direct_seen = true;
  full24.forwarded_seen = true;
  r.crosscheck_records.emplace(full24.prefix, full24);
  cd::scanner::PrefixRecord silent24;  // probed, nothing escaped
  silent24.prefix = cd::net::IpAddr::v4(20, 0, 2, 0);
  silent24.asn = 124;
  r.crosscheck_records.emplace(silent24.prefix, silent24);
  r.crosscheck_probes = 777;

  cd::attack::PoisonRecord fell;  // attacker plane: a poisoned legacy victim
  fell.victim = cd::net::IpAddr::v4(20, 0, 1, 10);
  fell.asn = 123;
  fell.software = cd::resolver::DnsSoftware::kBind8;
  fell.os = cd::sim::OsId::kEmbeddedCpe;
  fell.open = true;
  fell.reachable = true;
  fell.success = true;
  fell.rounds = 4;
  fell.success_round = 2;
  fell.poisoned_ttl = 86400;
  fell.triggers = 5;
  fell.forged = 128;
  fell.observed_ports = {53, 53, 53};
  r.poison_records.emplace(fell.victim, fell);
  cd::attack::PoisonRecord held;  // raced but never reached (border filtered)
  held.victim = cd::net::IpAddr::v4(20, 0, 2, 10);
  held.asn = 124;
  held.software = cd::resolver::DnsSoftware::kUnbound190;
  held.os = cd::sim::OsId::kUbuntu1904;
  r.poison_records.emplace(held.victim, held);
  r.poison_triggers = 10;
  r.poison_forged = 128;

  r.capture.snaplen = 512;
  cd::pcap::PcapRecord pkt;
  pkt.time_us = 1000;
  pkt.orig_len = 80;
  pkt.annotation = 3;
  pkt.bytes = {0xde, 0xad, 0xbe, 0xef};
  r.capture.records.push_back(pkt);
  return r;
}

TEST(SpillCodec, RoundTripPreservesEveryField) {
  const ExperimentResults original = synthetic_results();
  const auto bytes = cd::core::serialize_results(original);
  const ExperimentResults back = cd::core::parse_results(bytes);

  EXPECT_EQ(results_digest(back), results_digest(original));
  ASSERT_EQ(back.records.size(), original.records.size());
  for (const auto& [addr, expect] : original.records) {
    const auto it = back.records.find(addr);
    ASSERT_NE(it, back.records.end()) << addr.to_string();
    const auto& got = it->second;
    EXPECT_EQ(got.asn, expect.asn);
    EXPECT_EQ(got.sources_hit, expect.sources_hit);
    EXPECT_EQ(got.categories_hit, expect.categories_hit);
    EXPECT_EQ(got.first_hit_time, expect.first_hit_time);
    EXPECT_EQ(got.first_hit_source, expect.first_hit_source);
    EXPECT_EQ(got.direct_seen, expect.direct_seen);
    EXPECT_EQ(got.forwarded_seen, expect.forwarded_seen);
    EXPECT_EQ(got.forwarders_seen, expect.forwarders_seen);
    EXPECT_EQ(got.client_in_target_as, expect.client_in_target_as);
    EXPECT_EQ(got.ports_v4, expect.ports_v4);
    EXPECT_EQ(got.ports_v6, expect.ports_v6);
    EXPECT_EQ(got.open_hit, expect.open_hit);
    EXPECT_EQ(got.tcp_hit, expect.tcp_hit);
    ASSERT_EQ(got.tcp_syn.has_value(), expect.tcp_syn.has_value());
    if (got.tcp_syn) {
      EXPECT_EQ(got.tcp_syn->serialize(), expect.tcp_syn->serialize());
    }
  }
  EXPECT_EQ(back.collector_stats.entries_seen, 10u);
  EXPECT_EQ(back.collector_stats.foreign, 1u);
  EXPECT_EQ(back.collector_stats.excluded_lifetime, 2u);
  EXPECT_EQ(back.collector_stats.qmin_partial, 3u);
  EXPECT_EQ(back.qmin_asns, original.qmin_asns);
  EXPECT_EQ(back.lifetime_excluded_targets, original.lifetime_excluded_targets);
  EXPECT_EQ(back.network_stats.sent, 99u);
  EXPECT_EQ(back.network_stats.delivered, 55u);
  EXPECT_EQ(back.network_stats.delivery_batches, 44u);
  EXPECT_EQ(back.network_stats.dropped_dsav, 7u);
  EXPECT_EQ(back.network_stats.dropped_no_host, 37u);
  EXPECT_EQ(back.queries_sent, 400u);
  EXPECT_EQ(back.followup_batteries, 5u);
  EXPECT_EQ(back.analyst_replays, 6u);
  EXPECT_EQ(back.capture.snaplen, 512u);
  ASSERT_EQ(back.capture.records.size(), 1u);
  EXPECT_EQ(back.capture.records[0], original.capture.records[0]);

  ASSERT_EQ(back.crosscheck_records.size(), original.crosscheck_records.size());
  for (const auto& [base, expect] : original.crosscheck_records) {
    const auto it = back.crosscheck_records.find(base);
    ASSERT_NE(it, back.crosscheck_records.end()) << base.to_string();
    EXPECT_EQ(it->second.prefix, expect.prefix);
    EXPECT_EQ(it->second.asn, expect.asn);
    EXPECT_EQ(it->second.responding, expect.responding);
    EXPECT_EQ(it->second.hits, expect.hits);
    EXPECT_EQ(it->second.direct_seen, expect.direct_seen);
    EXPECT_EQ(it->second.forwarded_seen, expect.forwarded_seen);
  }
  EXPECT_EQ(back.crosscheck_probes, 777u);

  ASSERT_EQ(back.poison_records.size(), original.poison_records.size());
  for (const auto& [addr, expect] : original.poison_records) {
    const auto it = back.poison_records.find(addr);
    ASSERT_NE(it, back.poison_records.end()) << addr.to_string();
    EXPECT_EQ(it->second.victim, expect.victim);
    EXPECT_EQ(it->second.asn, expect.asn);
    EXPECT_EQ(it->second.software, expect.software);
    EXPECT_EQ(it->second.os, expect.os);
    EXPECT_EQ(it->second.open, expect.open);
    EXPECT_EQ(it->second.reachable, expect.reachable);
    EXPECT_EQ(it->second.success, expect.success);
    EXPECT_EQ(it->second.rounds, expect.rounds);
    EXPECT_EQ(it->second.success_round, expect.success_round);
    EXPECT_EQ(it->second.poisoned_ttl, expect.poisoned_ttl);
    EXPECT_EQ(it->second.triggers, expect.triggers);
    EXPECT_EQ(it->second.forged, expect.forged);
    EXPECT_EQ(it->second.observed_ports, expect.observed_ports);
  }
  EXPECT_EQ(back.poison_triggers, 10u);
  EXPECT_EQ(back.poison_forged, 128u);
}

TEST(SpillCodec, FileRoundTripAndMissingFile) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "cd_spill_roundtrip_test.cdsp")
                        .string();
  const ExperimentResults original = synthetic_results();
  cd::core::write_results(original, path);
  const ExperimentResults back = cd::core::read_results(path);
  EXPECT_EQ(results_digest(back), results_digest(original));
  std::remove(path.c_str());
  EXPECT_THROW((void)cd::core::read_results(path), cd::Error);
}

TEST(SpillCodec, EveryStrictPrefixFailsToParse) {
  const auto bytes = cd::core::serialize_results(synthetic_results());
  ASSERT_GT(bytes.size(), 8u);
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW(
        (void)cd::core::parse_results(std::span(bytes.data(), n)),
        cd::ParseError)
        << "prefix of " << n << " bytes parsed";
  }
}

TEST(SpillCodec, TrailingGarbageAndBadHeaderFail) {
  auto bytes = cd::core::serialize_results(synthetic_results());
  auto trailing = bytes;
  trailing.push_back(0x00);
  EXPECT_THROW((void)cd::core::parse_results(trailing), cd::ParseError);

  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW((void)cd::core::parse_results(bad_magic), cd::ParseError);

  auto bad_version = bytes;
  bad_version[4] ^= 0xff;
  EXPECT_THROW((void)cd::core::parse_results(bad_version), cd::ParseError);
}

TEST(SpillCodec, RandomSingleBitFlipsNeverParseSilently) {
  // Every byte of a .cdsp file is load-bearing: a corrupted file must either
  // refuse to parse, or decode to a value that visibly differs when
  // reserialized — never crash (the ASan/UBSan CI lanes make "never crash"
  // mean "never over-read or hit UB"), and never round-trip back to the
  // pristine bytes as if nothing happened.
  const auto pristine = cd::core::serialize_results(synthetic_results());
  ASSERT_GT(pristine.size(), 64u);
  std::mt19937_64 gen(0xc0ffee);  // fixed seed: reproducible corpus
  int threw = 0, reparsed_differently = 0;
  for (int i = 0; i < 256; ++i) {
    auto flipped = pristine;
    const std::size_t byte = gen() % flipped.size();
    const unsigned bit = gen() % 8;
    flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
    try {
      const ExperimentResults parsed = cd::core::parse_results(flipped);
      ++reparsed_differently;
      EXPECT_NE(cd::core::serialize_results(parsed), pristine)
          << "bit " << bit << " of byte " << byte
          << " flipped, yet the parse round-tripped to the pristine bytes";
    } catch (const cd::ParseError&) {
      ++threw;  // the strict outcome; any other exception fails the test
    }
  }
  // Both outcomes must actually occur, or the property degenerates (a codec
  // that throws on everything — or parses anything — would pass vacuously).
  EXPECT_GT(threw, 0);
  EXPECT_GT(reparsed_differently, 0);
}

// --- bounded memory ---------------------------------------------------------

TEST(CampaignMemory, PeakRssBoundedRegardlessOfTargetCount) {
  // Scale targets 2x while scaling shards 2x: with streamed worlds and
  // spilled results, the in-flight footprint tracks shard size, not world
  // size, so the doubled world must not double the per-shard target slice —
  // and the whole binary must fit a fixed absolute budget that does not
  // move when target counts grow.
  auto small = test_spec(42);
  auto large = small;
  large.n_asns *= 2;

  const auto dir = std::filesystem::temp_directory_path() / "cd_spill_rss";
  ExperimentConfig config = test_config(4, true, (dir / "a").string());
  config.capture.reset();  // captures are O(traffic) by design
  const ShardedResults a = run_sharded_experiment(small, config);
  config = test_config(8, true, (dir / "b").string());
  config.capture.reset();
  config.num_threads = 2;
  const ShardedResults b = run_sharded_experiment(large, config);
  std::filesystem::remove_all(dir);

  std::size_t max_slice_a = 0, max_slice_b = 0;
  for (const auto& t : a.shards) max_slice_a = std::max(max_slice_a, t.targets);
  for (const auto& t : b.shards) max_slice_b = std::max(max_slice_b, t.targets);
  ASSERT_GT(max_slice_a, 0u);
  // Hash-partitioned ASes are not perfectly even; 1.6x headroom on "did not
  // double" still fails if shard slices grow with the world.
  EXPECT_LT(max_slice_b, static_cast<std::size_t>(max_slice_a * 1.6))
      << "doubling targets at doubled shard count doubled the shard slice";

#ifdef CD_SANITIZED
  // Sanitizer shadow + quarantine dominate VmHWM; budget accordingly.
  constexpr std::size_t kBudgetKb = 4u * 1024 * 1024;
#else
  constexpr std::size_t kBudgetKb = 768u * 1024;
#endif
  const std::size_t peak = cd::peak_rss_kb();
  ASSERT_GT(peak, 0u) << "VmHWM unavailable";
  EXPECT_LT(peak, kBudgetKb)
      << "campaign peak RSS " << peak << " KiB exceeds the fixed budget";
}

}  // namespace
