// Unit + integration tests: network filtering (OSAV/DSAV/martian), host
// stacks (Table 6 rules as parameterized sweep), UDP delivery, and TCP.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "sim/host.h"
#include "sim/network.h"
#include "util/rng.h"

namespace {

using namespace cd;
using net::IpAddr;
using net::Packet;
using net::Prefix;
using sim::DropReason;
using sim::FilterPolicy;
using sim::Host;
using sim::Network;

struct Fixture {
  sim::EventLoop loop;
  sim::Topology topology;
  Network network{topology, loop, Rng(77)};

  Fixture() {
    topology.add_as(1, FilterPolicy{});  // vanilla origin
    topology.add_as(2, FilterPolicy{});  // vanilla destination
    topology.add_as(3, FilterPolicy{.osav = true});
    topology.add_as(4, FilterPolicy{.dsav = true});
    topology.add_as(5, FilterPolicy{.drop_inbound_martians = true});
    topology.announce(1, Prefix::must_parse("21.0.0.0/16"));
    topology.announce(2, Prefix::must_parse("22.0.0.0/16"));
    topology.announce(3, Prefix::must_parse("23.0.0.0/16"));
    topology.announce(4, Prefix::must_parse("24.0.0.0/16"));
    topology.announce(5, Prefix::must_parse("25.0.0.0/16"));
  }

  DropReason last = DropReason::kNone;
  void tap() {
    network.add_tap([this](const Packet&, DropReason r, sim::SimTime) {
      last = r;
    });
  }
};

Packet udp(const char* src, const char* dst) {
  return net::make_udp(IpAddr::must_parse(src), 1000,
                       IpAddr::must_parse(dst), 53, {1});
}

TEST(Network, DeliversToBoundService) {
  Fixture f;
  Host host(f.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
            {IpAddr::must_parse("22.0.0.1")}, Rng(1));
  int received = 0;
  host.bind_udp(53, [&](const Packet&) { ++received; });
  f.network.send(udp("21.0.0.5", "22.0.0.1"), 1);
  f.loop.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.network.stats().delivered, 1u);
}

TEST(Network, OsavDropsForeignSourceAtEgress) {
  Fixture f;
  Host host(f.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
            {IpAddr::must_parse("22.0.0.1")}, Rng(1));
  f.tap();
  // Spoofed src 22.x leaving AS 3 (OSAV): dropped at origin border.
  f.network.send(udp("22.0.0.99", "22.0.0.1"), 3);
  EXPECT_EQ(f.last, DropReason::kOsav);
  EXPECT_EQ(f.network.stats().dropped_osav, 1u);
  // The same packet from AS 1 (no OSAV) sails through.
  f.network.send(udp("22.0.0.99", "22.0.0.1"), 1);
  EXPECT_EQ(f.last, DropReason::kNone);
}

TEST(Network, OsavAllowsOwnSource) {
  Fixture f;
  Host host(f.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
            {IpAddr::must_parse("22.0.0.1")}, Rng(1));
  f.tap();
  f.network.send(udp("23.0.0.5", "22.0.0.1"), 3);
  EXPECT_EQ(f.last, DropReason::kNone);
}

TEST(Network, DsavDropsInternalSourceAtIngress) {
  Fixture f;
  Host host(f.network, 4, sim::os_profile(sim::OsId::kUbuntu1904),
            {IpAddr::must_parse("24.0.0.1")}, Rng(1));
  f.tap();
  // Claimed source inside the destination AS (other-prefix style spoof).
  f.network.send(udp("24.0.5.5", "24.0.0.1"), 1);
  EXPECT_EQ(f.last, DropReason::kDsav);
  // Destination-as-source is equally internal.
  f.network.send(udp("24.0.0.1", "24.0.0.1"), 1);
  EXPECT_EQ(f.last, DropReason::kDsav);
  // External source passes.
  f.network.send(udp("21.0.0.5", "24.0.0.1"), 1);
  EXPECT_EQ(f.last, DropReason::kNone);
}

TEST(Network, DsavDoesNotCoverPrivateSources) {
  Fixture f;
  Host host(f.network, 4, sim::os_profile(sim::OsId::kUbuntu1904),
            {IpAddr::must_parse("24.0.0.1")}, Rng(1));
  f.tap();
  // The blind spot the smoke test documents: DSAV filters *internal*
  // addresses; a private source is not internal, and AS 4 has no martian
  // filtering.
  f.network.send(udp("192.168.0.10", "24.0.0.1"), 1);
  EXPECT_EQ(f.last, DropReason::kNone);
}

TEST(Network, MartianFilterDropsSpecialSources) {
  Fixture f;
  Host host(f.network, 5, sim::os_profile(sim::OsId::kFreeBsd121),
            {IpAddr::must_parse("25.0.0.1")}, Rng(1));
  f.tap();
  f.network.send(udp("192.168.0.10", "25.0.0.1"), 1);
  EXPECT_EQ(f.last, DropReason::kMartian);
  f.network.send(udp("127.0.0.1", "25.0.0.1"), 1);
  EXPECT_EQ(f.last, DropReason::kMartian);
  f.network.send(udp("21.0.0.5", "25.0.0.1"), 1);
  EXPECT_EQ(f.last, DropReason::kNone);
}

TEST(Network, UrpfSubnetFilterDropsSameSubnetSpoofs) {
  Fixture f;
  f.topology.add_as(6, FilterPolicy{.drop_inbound_same_subnet = true});
  f.topology.announce(6, Prefix::must_parse("26.0.0.0/16"));
  Host host(f.network, 6, sim::os_profile(sim::OsId::kFreeBsd121),
            {IpAddr::must_parse("26.0.1.10")}, Rng(1));
  f.tap();
  // Same-/24 spoof arriving from outside: dropped by last-hop uRPF.
  f.network.send(udp("26.0.1.99", "26.0.1.10"), 1);
  EXPECT_EQ(f.last, DropReason::kUrpfSubnet);
  EXPECT_EQ(f.network.stats().dropped_urpf, 1u);
  // Other-prefix spoofs inside the AS are NOT covered (that is DSAV's job).
  f.network.send(udp("26.0.2.99", "26.0.1.10"), 1);
  EXPECT_EQ(f.last, DropReason::kNone);
  // Strict uRPF also covers destination-as-source: the reverse path for
  // that source points at the local interface, not the border.
  f.network.send(udp("26.0.1.10", "26.0.1.10"), 1);
  EXPECT_EQ(f.last, DropReason::kUrpfSubnet);
}

TEST(Network, IntraAsTrafficSkipsBorderFilters) {
  Fixture f;
  Host host(f.network, 4, sim::os_profile(sim::OsId::kUbuntu1904),
            {IpAddr::must_parse("24.0.0.1")}, Rng(1));
  f.tap();
  // Same-AS origin: DSAV is a *border* filter and must not apply.
  f.network.send(udp("24.0.5.5", "24.0.0.1"), 4);
  EXPECT_EQ(f.last, DropReason::kNone);
}

TEST(Network, UnroutedAndNoHost) {
  Fixture f;
  f.tap();
  f.network.send(udp("21.0.0.5", "99.0.0.1"), 1);
  EXPECT_EQ(f.last, DropReason::kUnrouted);
  f.network.send(udp("21.0.0.5", "22.0.0.200"), 1);
  EXPECT_EQ(f.last, DropReason::kNoHost);
}

TEST(Network, DetachRemovesHost) {
  Fixture f;
  f.tap();
  {
    Host host(f.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
              {IpAddr::must_parse("22.0.0.1")}, Rng(1));
    f.network.send(udp("21.0.0.5", "22.0.0.1"), 1);
    EXPECT_EQ(f.last, DropReason::kNone);
    f.loop.run();
  }
  f.network.send(udp("21.0.0.5", "22.0.0.1"), 1);
  EXPECT_EQ(f.last, DropReason::kNoHost);
}

// --- Table 6 stack rules as a parameterized sweep --------------------------------

struct StackCase {
  sim::OsId os;
  bool ds_v4, lb_v4, ds_v6, lb_v6;
};

class StackAcceptance : public ::testing::TestWithParam<StackCase> {};

TEST_P(StackAcceptance, MatchesTable6) {
  const StackCase& c = GetParam();
  Fixture f;
  const auto v4 = IpAddr::must_parse("22.0.0.1");
  const auto v6 = IpAddr::must_parse("2400:22::1");
  f.topology.announce(2, Prefix::must_parse("2400:22::/32"));
  Host host(f.network, 2, sim::os_profile(c.os), {v4, v6}, Rng(1));

  auto accepts = [&](const IpAddr& src, const IpAddr& dst) {
    Packet pkt = net::make_udp(src, 1000, dst, 53, {1});
    return host.stack_accepts(pkt);
  };
  EXPECT_EQ(accepts(v4, v4), c.ds_v4) << "DS v4";
  EXPECT_EQ(accepts(IpAddr::must_parse("127.0.0.1"), v4), c.lb_v4) << "LB v4";
  EXPECT_EQ(accepts(v6, v6), c.ds_v6) << "DS v6";
  EXPECT_EQ(accepts(IpAddr::must_parse("::1"), v6), c.lb_v6) << "LB v6";
  // Ordinary external sources are always accepted.
  EXPECT_TRUE(accepts(IpAddr::must_parse("21.0.0.9"), v4));
  // Packets for someone else are not.
  EXPECT_FALSE(accepts(IpAddr::must_parse("21.0.0.9"),
                       IpAddr::must_parse("22.0.0.2")));
}

INSTANTIATE_TEST_SUITE_P(
    Table6, StackAcceptance,
    ::testing::Values(
        StackCase{sim::OsId::kUbuntu1904, false, false, true, false},
        StackCase{sim::OsId::kUbuntu1604, false, false, true, false},
        StackCase{sim::OsId::kUbuntu1004, false, false, true, true},
        StackCase{sim::OsId::kUbuntu1404, false, false, true, true},
        StackCase{sim::OsId::kFreeBsd121, true, false, true, false},
        StackCase{sim::OsId::kWin2019, true, false, true, false},
        StackCase{sim::OsId::kWin2008R2, true, false, true, false},
        StackCase{sim::OsId::kWin2003, true, true, true, false}));

// --- TCP ---------------------------------------------------------------------------

TEST(Tcp, RequestResponseExchange) {
  Fixture f;
  Host server(f.network, 2, sim::os_profile(sim::OsId::kFreeBsd121),
              {IpAddr::must_parse("22.0.0.1")}, Rng(1));
  Host client(f.network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
              {IpAddr::must_parse("21.0.0.1")}, Rng(2));

  std::optional<sim::TcpConnInfo> seen_conn;
  server.tcp_listen(53, [&](const sim::TcpConnInfo& info,
                            std::span<const std::uint8_t> req) {
    seen_conn = info;
    std::vector<std::uint8_t> resp(req.begin(), req.end());
    resp.push_back(0xFF);
    return resp;
  });

  std::optional<std::vector<std::uint8_t>> reply;
  client.tcp_connect(IpAddr::must_parse("21.0.0.1"),
                     IpAddr::must_parse("22.0.0.1"), 53,
                     std::vector<std::uint8_t>{1, 2, 3},
                     [&](auto r) { reply = std::move(*r); });
  f.loop.run();

  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, (std::vector<std::uint8_t>{1, 2, 3, 0xFF}));
  ASSERT_TRUE(seen_conn.has_value());
  // The server kept the client's SYN with its fingerprintable fields.
  EXPECT_TRUE(seen_conn->syn.tcp_flags.syn);
  EXPECT_EQ(seen_conn->syn.tcp_window,
            sim::os_profile(sim::OsId::kUbuntu1904).fp.window);
  EXPECT_EQ(seen_conn->syn.ttl,
            sim::os_profile(sim::OsId::kUbuntu1904).fp.initial_ttl);
  EXPECT_EQ(seen_conn->syn.tcp_options,
            sim::os_profile(sim::OsId::kUbuntu1904).fp.syn_options);
}

TEST(Tcp, TimeoutWhenNoListener) {
  Fixture f;
  Host server(f.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
              {IpAddr::must_parse("22.0.0.1")}, Rng(1));
  Host client(f.network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
              {IpAddr::must_parse("21.0.0.1")}, Rng(2));
  bool failed = false;
  client.tcp_connect(IpAddr::must_parse("21.0.0.1"),
                     IpAddr::must_parse("22.0.0.1"), 53,
                     std::vector<std::uint8_t>{1},
                     [&](auto r) { failed = !r.has_value(); },
                     2 * sim::kSecond);
  f.loop.run();
  EXPECT_TRUE(failed);
}

TEST(Tcp, SpoofedSynCannotComplete) {
  Fixture f;
  Host server(f.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
              {IpAddr::must_parse("22.0.0.1")}, Rng(1));
  int served = 0;
  server.tcp_listen(53, [&](const sim::TcpConnInfo&,
                            std::span<const std::uint8_t>) {
    ++served;
    return std::vector<std::uint8_t>{};
  });
  // A spoofed SYN: the SYN-ACK goes to the claimed source (no host there),
  // so the handshake never finishes and the service never runs.
  Packet syn = net::make_tcp(IpAddr::must_parse("21.0.9.9"), 1234,
                             IpAddr::must_parse("22.0.0.1"), 53,
                             net::TcpFlags{.syn = true});
  f.network.send(std::move(syn), 1);
  f.loop.run();
  EXPECT_EQ(served, 0);
}

TEST(Host, EphemeralPortsWithinOsRange) {
  Fixture f;
  const auto& os = sim::os_profile(sim::OsId::kUbuntu1904);
  Host host(f.network, 2, os, {IpAddr::must_parse("22.0.0.1")}, Rng(5));
  for (int i = 0; i < 5000; ++i) {
    const std::uint16_t p = host.ephemeral_port();
    EXPECT_GE(p, os.ephemeral_lo);
    EXPECT_LE(p, os.ephemeral_hi);
  }
}

// --- capture taps ------------------------------------------------------------

struct CaptureFixture : Fixture {
  Host a{network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
         {IpAddr::must_parse("21.0.0.1")}, Rng(1)};
  Host b{network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
         {IpAddr::must_parse("22.0.0.1")}, Rng(2)};
  std::vector<std::vector<std::uint8_t>> delivered_wire;

  CaptureFixture() {
    // Hosts record the wire form of each delivery, in delivery order.
    auto log = [this](const Packet& pkt) {
      delivered_wire.push_back(pkt.serialize());
    };
    a.bind_udp(53, log);
    b.bind_udp(53, log);
  }

  /// Sends `n` packets with distinguishable payloads toward both hosts.
  void send_batch(int n) {
    for (int i = 0; i < n; ++i) {
      const char* dst = (i % 2 == 0) ? "22.0.0.1" : "21.0.0.1";
      Packet pkt = net::make_udp(IpAddr::must_parse("21.0.0.5"),
                                 static_cast<std::uint16_t>(1000 + i),
                                 IpAddr::must_parse(dst), 53,
                                 {static_cast<std::uint8_t>(i)});
      network.send(std::move(pkt), 1);
    }
  }
};

TEST(CaptureTap, ObservesPacketsInExactDeliveryOrder) {
  CaptureFixture f;
  pcap::Capture capture;
  f.network.attach_capture(capture);
  f.send_batch(12);
  f.loop.run();

  // Latency jitter reorders deliveries relative to send order; the capture
  // must match what the hosts actually saw, byte for byte, record by record.
  ASSERT_EQ(f.delivered_wire.size(), 12u);
  ASSERT_EQ(capture.records.size(), 12u);
  for (std::size_t i = 0; i < capture.records.size(); ++i) {
    EXPECT_EQ(capture.records[i].bytes, f.delivered_wire[i]) << "record " << i;
    EXPECT_EQ(capture.records[i].annotation, 0) << "record " << i;
  }
  for (std::size_t i = 1; i < capture.records.size(); ++i) {
    EXPECT_GE(capture.records[i].time_us, capture.records[i - 1].time_us);
  }
}

TEST(CaptureTap, DropsAppearOnlyWhenDropCaptureEnabled) {
  CaptureFixture f;
  pcap::Capture delivered_only, with_drops;
  f.network.attach_capture(delivered_only);
  Network::CaptureOptions opts;
  opts.include_drops = true;
  f.network.attach_capture(with_drops, std::move(opts));

  // One delivery, one OSAV drop, one martian drop, one no-host drop.
  f.network.send(udp("21.0.0.5", "22.0.0.1"), 1);
  f.network.send(udp("22.0.0.99", "22.0.0.1"), 3);
  f.network.send(udp("192.168.0.10", "25.0.0.1"), 1);
  f.network.send(udp("21.0.0.5", "22.0.0.200"), 1);
  f.loop.run();

  ASSERT_EQ(delivered_only.records.size(), 1u);
  EXPECT_EQ(delivered_only.records[0].annotation,
            static_cast<std::uint8_t>(DropReason::kNone));

  ASSERT_EQ(with_drops.records.size(), 4u);
  // Drops are recorded at send time (time 0), the delivery later: the
  // drop-annotated records come first and carry their reasons.
  EXPECT_EQ(with_drops.records[0].annotation,
            static_cast<std::uint8_t>(DropReason::kOsav));
  EXPECT_EQ(with_drops.records[1].annotation,
            static_cast<std::uint8_t>(DropReason::kMartian));
  EXPECT_EQ(with_drops.records[2].annotation,
            static_cast<std::uint8_t>(DropReason::kNoHost));
  EXPECT_EQ(with_drops.records[3].annotation,
            static_cast<std::uint8_t>(DropReason::kNone));
  EXPECT_EQ(with_drops.records[3].bytes, delivered_only.records[0].bytes);
}

TEST(CaptureTap, PerHostFilterSelectsOneHostsTraffic) {
  CaptureFixture f;
  pcap::Capture capture;
  Network::CaptureOptions opts;
  opts.host = IpAddr::must_parse("21.0.0.1");
  f.network.attach_capture(capture, std::move(opts));
  f.send_batch(10);
  f.loop.run();
  ASSERT_EQ(capture.records.size(), 5u);  // only the odd-indexed sends
  for (const auto& rec : capture.records) {
    const Packet pkt = Packet::parse(rec.bytes);
    EXPECT_EQ(pkt.dst, IpAddr::must_parse("21.0.0.1"));
  }
}

TEST(CaptureTap, FilterSeesOriginAsn) {
  Fixture f;
  Host host(f.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
            {IpAddr::must_parse("22.0.0.1")}, Rng(1));
  pcap::Capture capture;
  Network::CaptureOptions opts;
  opts.filter = [](const Packet&, DropReason, sim::Asn origin) {
    return origin == 3;
  };
  f.network.attach_capture(capture, std::move(opts));
  f.network.send(udp("23.0.0.5", "22.0.0.1"), 3);
  f.network.send(udp("21.0.0.5", "22.0.0.1"), 1);
  f.loop.run();
  ASSERT_EQ(capture.records.size(), 1u);
  EXPECT_EQ(Packet::parse(capture.records[0].bytes).src,
            IpAddr::must_parse("23.0.0.5"));
}

TEST(CaptureTap, RemovingTapMidCampaignIsSafe) {
  CaptureFixture f;
  pcap::Capture capture;
  const Network::TapId id = f.network.attach_capture(capture);
  f.send_batch(6);
  // Remove the tap while deliveries are still in flight: packets already
  // scheduled must not be recorded after removal, and nothing may touch the
  // (soon dangling-unsafe) sink.
  f.loop.run_until(0);  // classify/sends happened, deliveries pending
  f.network.remove_tap(id);
  const std::size_t at_removal = capture.records.size();
  f.loop.run();
  EXPECT_EQ(capture.records.size(), at_removal);
  EXPECT_EQ(f.delivered_wire.size(), 6u) << "delivery itself must continue";
  // Removing twice (or an unknown id) is harmless.
  f.network.remove_tap(id);
  f.network.remove_tap(9999);
}

TEST(CaptureTap, RemovingTapFromInsideLegacyTapIsSafe) {
  CaptureFixture f;
  pcap::Capture capture;
  const Network::TapId cap_id = f.network.attach_capture(capture);
  // A legacy tap that rips out the capture (and itself) on the first packet
  // it sees — dispatch must survive the mid-iteration removal.
  Network::TapId self_id = 0;
  self_id = f.network.add_tap(
      [&](const Packet&, DropReason, sim::SimTime) {
        f.network.remove_tap(cap_id);
        f.network.remove_tap(self_id);
      });
  f.send_batch(4);
  f.loop.run();
  EXPECT_TRUE(capture.records.empty())
      << "capture was removed at send time, before any delivery";
  EXPECT_EQ(f.delivered_wire.size(), 4u);
}

TEST(CaptureTap, LegacyAddTapStillObservesSends) {
  Fixture f;
  Host host(f.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
            {IpAddr::must_parse("22.0.0.1")}, Rng(1));
  int seen = 0;
  const Network::TapId id = f.network.add_tap(
      [&](const Packet&, DropReason, sim::SimTime) { ++seen; });
  f.network.send(udp("21.0.0.5", "22.0.0.1"), 1);
  f.network.send(udp("21.0.0.5", "99.0.0.1"), 1);  // drop: still observed
  EXPECT_EQ(seen, 2);
  f.network.remove_tap(id);
  f.network.send(udp("21.0.0.5", "22.0.0.1"), 1);
  EXPECT_EQ(seen, 2);
  f.loop.run();
}

TEST(Host, AddressHelpers) {
  Fixture f;
  const auto v4 = IpAddr::must_parse("22.0.0.1");
  Host host(f.network, 2, sim::os_profile(sim::OsId::kUbuntu1904), {v4},
            Rng(5));
  EXPECT_TRUE(host.has_address(v4));
  EXPECT_FALSE(host.has_address(IpAddr::must_parse("22.0.0.2")));
  EXPECT_EQ(host.address(net::IpFamily::kV4), v4);
  EXPECT_FALSE(host.address(net::IpFamily::kV6));
}

// --- anycast -----------------------------------------------------------------

TEST(Anycast, CatchmentPicksTopologicallyNearestSite) {
  Fixture f;
  const auto service = IpAddr::must_parse("11.3.0.53");
  const auto& os = sim::os_profile(sim::OsId::kUbuntu1904);
  Host site1(f.network, 1, os, {IpAddr::must_parse("21.0.0.53")}, Rng(1));
  Host site2(f.network, 2, os, {IpAddr::must_parse("22.0.0.53")}, Rng(2));
  f.network.add_anycast_site(service, &site1);
  f.network.add_anycast_site(service, &site2);
  // Catchment per origin AS must agree exactly with the shared pair-latency
  // metric: whichever site is cheaper to reach from that AS wins.
  for (const sim::Asn origin : {1u, 2u, 3u, 4u, 5u}) {
    Host* got = f.network.anycast_catchment(service, origin);
    ASSERT_NE(got, nullptr);
    const auto d1 = Network::pair_base_latency(origin, 1);
    const auto d2 = Network::pair_base_latency(origin, 2);
    EXPECT_EQ(got, d2 < d1 ? &site2 : &site1) << "origin=" << origin;
  }
  // A site's own AS always reaches itself (same-AS distance is zero).
  EXPECT_EQ(f.network.anycast_catchment(service, 1), &site1);
  EXPECT_EQ(f.network.anycast_catchment(service, 2), &site2);
}

TEST(Anycast, EqualDistanceBreaksTiesByRegistrationOrder) {
  Fixture f;
  const auto service = IpAddr::must_parse("11.3.0.53");
  const auto& os = sim::os_profile(sim::OsId::kUbuntu1904);
  // Two sites in the SAME AS are equidistant from everywhere; the first
  // registered must win deterministically.
  Host site1(f.network, 1, os, {IpAddr::must_parse("21.0.0.53")}, Rng(1));
  Host site2(f.network, 1, os, {IpAddr::must_parse("21.0.1.53")}, Rng(2));
  f.network.add_anycast_site(service, &site1);
  f.network.add_anycast_site(service, &site2);
  for (const sim::Asn origin : {1u, 2u, 5u}) {
    EXPECT_EQ(f.network.anycast_catchment(service, origin), &site1);
  }
}

TEST(Anycast, UnknownServiceHasNoCatchment) {
  Fixture f;
  EXPECT_EQ(f.network.anycast_catchment(IpAddr::must_parse("11.3.0.53"), 1),
            nullptr);
}

TEST(Anycast, DeliveryReachesCatchmentSiteWithoutAnnouncement) {
  // The service prefix is never announced by any AS — anycast classification
  // must route the packet to the catchment site anyway, exactly as a covert
  // attack-plane deployment would behave.
  Fixture f;
  const auto service = IpAddr::must_parse("11.3.0.53");
  const auto& os = sim::os_profile(sim::OsId::kUbuntu1904);
  Host site(f.network, 2, os, {service}, Rng(1));
  f.network.add_anycast_site(service, &site);
  bool got = false;
  site.bind_udp(53, [&](const Packet& pkt) {
    got = pkt.src == IpAddr::must_parse("21.0.0.1");
  });
  f.network.send(net::make_udp(IpAddr::must_parse("21.0.0.1"), 1000, service,
                               53, {1}),
                 /*origin_asn=*/1);
  f.loop.run(1'000'000);
  EXPECT_TRUE(got);
}

}  // namespace
