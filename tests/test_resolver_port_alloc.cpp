// Unit + property tests: source-port allocation strategies (Table 5).
#include <gtest/gtest.h>

#include <set>

#include "resolver/port_alloc.h"
#include "util/error.h"

namespace {

using namespace cd;
using namespace cd::resolver;

TEST(FixedPort, AlwaysSame) {
  FixedPortAllocator alloc(53);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alloc.next(), 53);
  EXPECT_EQ(alloc.describe(), "fixed:53");
}

TEST(SmallPool, DrawsOnlyFromPool) {
  const std::vector<std::uint16_t> pool = {1111, 2222, 3333};
  SmallPoolAllocator alloc(pool, Rng(1));
  std::set<std::uint16_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint16_t p = alloc.next();
    seen.insert(p);
    EXPECT_TRUE(p == 1111 || p == 2222 || p == 3333);
  }
  EXPECT_EQ(seen.size(), 3u);  // all pool members eventually used
}

TEST(SmallPool, EmptyPoolThrows) {
  EXPECT_THROW(SmallPoolAllocator({}, Rng(1)), InvariantError);
}

TEST(Sequential, StrictlyIncreasingWithWrap) {
  SequentialAllocator alloc(100, 104, 102);
  EXPECT_EQ(alloc.next(), 102);
  EXPECT_EQ(alloc.next(), 103);
  EXPECT_EQ(alloc.next(), 104);
  EXPECT_EQ(alloc.next(), 100);  // wrap
  EXPECT_EQ(alloc.next(), 101);
  EXPECT_EQ(alloc.next(), 102);
}

TEST(Sequential, InvalidBoundsThrow) {
  EXPECT_THROW(SequentialAllocator(10, 5, 7), InvariantError);
  EXPECT_THROW(SequentialAllocator(10, 20, 25), InvariantError);
}

TEST(UniformRange, StaysWithinBounds) {
  UniformRangeAllocator alloc(32768, 61000, Rng(2));
  std::uint16_t lo = UINT16_MAX, hi = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint16_t p = alloc.next();
    ASSERT_GE(p, 32768);
    ASSERT_LE(p, 61000);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  // With 20k draws from a 28k pool the observed range should be near-full.
  EXPECT_LT(lo, 32768 + 100);
  EXPECT_GT(hi, 61000 - 100);
}

TEST(UniformRange, SingletonRange) {
  UniformRangeAllocator alloc(7777, 7777, Rng(3));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(alloc.next(), 7777);
}

TEST(WindowsPool, ExactlyPoolSizeValues) {
  WindowsPoolAllocator alloc(static_cast<std::uint16_t>(50000), Rng(4));
  std::set<std::uint16_t> seen;
  for (int i = 0; i < 100000; ++i) seen.insert(alloc.next());
  EXPECT_EQ(seen.size(), WindowsPoolAllocator::kPoolSize);
  EXPECT_EQ(*seen.begin(), 50000);
  EXPECT_EQ(*seen.rbegin(), 50000 + 2499);
  EXPECT_FALSE(alloc.wraps());
}

TEST(WindowsPool, WrapsPastIanaMax) {
  // Start in the top 2,499 ports: the pool wraps to the bottom of the range.
  WindowsPoolAllocator alloc(static_cast<std::uint16_t>(65000), Rng(5));
  EXPECT_TRUE(alloc.wraps());
  std::set<std::uint16_t> seen;
  for (int i = 0; i < 100000; ++i) {
    const std::uint16_t p = alloc.next();
    seen.insert(p);
    // Every port is inside the IANA range despite the wrap.
    ASSERT_GE(p, WindowsPoolAllocator::kIanaMin);
  }
  EXPECT_EQ(seen.size(), WindowsPoolAllocator::kPoolSize);
  // Both the high tail and the wrapped low head are populated.
  EXPECT_TRUE(seen.count(65535));
  EXPECT_TRUE(seen.count(WindowsPoolAllocator::kIanaMin));
  // 65000..65535 is 536 ports; the rest start at 49152.
  EXPECT_EQ(*seen.rbegin(), 65535);
  EXPECT_EQ(*seen.begin(), WindowsPoolAllocator::kIanaMin);
}

TEST(WindowsPool, RandomStartInIanaRange) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    WindowsPoolAllocator alloc{Rng(seed)};
    EXPECT_GE(alloc.pool_start(), WindowsPoolAllocator::kIanaMin);
    EXPECT_LE(alloc.pool_start(), WindowsPoolAllocator::kIanaMax);
  }
}

TEST(WindowsPool, BelowIanaStartThrows) {
  EXPECT_THROW(WindowsPoolAllocator(static_cast<std::uint16_t>(1000), Rng(1)),
               InvariantError);
}

// Property sweep: every allocator yields ports in [1, 65535] forever.
class AllAllocators
    : public ::testing::TestWithParam<std::shared_ptr<PortAllocator>> {};

TEST_P(AllAllocators, NeverYieldsPortZero) {
  auto alloc = GetParam();
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(alloc->next(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllAllocators,
    ::testing::Values(
        std::make_shared<FixedPortAllocator>(53),
        std::make_shared<SmallPoolAllocator>(
            std::vector<std::uint16_t>{1024, 2048}, Rng(1)),
        std::make_shared<SequentialAllocator>(1024, 1224, 1024),
        std::make_shared<UniformRangeAllocator>(1024, 65535, Rng(2)),
        std::make_shared<WindowsPoolAllocator>(Rng(3))));

}  // namespace
