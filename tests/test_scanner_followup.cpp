// Unit/integration tests: the follow-up query engine (scanner/followup).
//
// Pins the §3.5 battery contract: on a target's FIRST reachability hit — and
// only the first — the engine sends 10 IPv4-only-delegation queries, 10
// IPv6-only-delegation queries, one non-spoofed open-resolver check, and one
// TC-eliciting query, spaced `FollowupConfig::spacing` apart and reusing the
// spoofed source that hit.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "dns/message.h"
#include "ditl/world.h"
#include "scanner/followup.h"
#include "util/error.h"

namespace {

using namespace cd;
using net::IpAddr;
using scanner::Collector;
using scanner::FollowupConfig;
using scanner::FollowupEngine;
using scanner::Prober;
using scanner::QnameCodec;
using scanner::QnameInfo;
using scanner::QueryMode;
using scanner::SourceSelector;
using scanner::TargetInfo;

/// One probe query the vantage put on the wire, as seen by a network tap.
struct SentQuery {
  QueryMode mode;
  IpAddr spoofed_src;
  sim::SimTime at;
};

/// A world plus a hand-built scanner stack (the same wiring
/// core::Experiment does) whose collector is fed synthetic auth-log
/// entries, so first hits happen exactly when the test says they do.
struct Fixture {
  std::unique_ptr<ditl::World> world = ditl::generate_world([] {
    auto spec = ditl::small_world_spec();
    spec.seed = 4242;
    return spec;
  }());
  Rng rng{world->spec.seed ^ 0xF0110};
  QnameCodec codec{world->base_zone, world->keyword};
  SourceSelector selector{world->topology, world->hitlist_v6,
                          scanner::SourceSelectConfig{}, rng.split("select")};
  Prober prober{*world->vantage, codec, selector, scanner::ProbeConfig{},
                rng.split("probe")};
  Collector collector{codec, scanner::CollectorConfig{}, &world->topology};
  FollowupEngine engine{prober, collector, FollowupConfig{}};

  /// Battery queries sent toward `target`, keyed off the embedded qname.
  std::map<IpAddr, std::vector<SentQuery>> sent;

  Fixture() {
    world->network->add_tap([this](const net::Packet& packet,
                                   sim::DropReason, sim::SimTime at) {
      if (packet.proto != net::IpProto::kUdp || packet.dst_port != 53) return;
      dns::DnsMessage msg;
      try {
        msg = dns::DnsMessage::decode(packet.payload);
      } catch (const ParseError&) {
        return;  // not DNS (or a response fragment) — not ours
      }
      if (msg.header.qr || msg.questions.empty()) return;
      const auto decoded = codec.decode(msg.qname());
      if (!decoded.in_experiment || !decoded.full()) return;
      // Battery traffic only: the query the wire says targets `dst`.
      if (!world->network->host_at(packet.dst)) return;
      sent[packet.dst].push_back(
          SentQuery{*decoded.mode, packet.src, at});
    });
  }

  /// Feeds the collector a synthetic auth-side observation: `target`
  /// answered a spoofed probe from `spoofed` right now.
  void observe_hit(const TargetInfo& target, const IpAddr& spoofed) {
    QnameInfo info;
    info.ts = world->loop.now();
    info.src = spoofed;
    info.dst = target.addr;
    info.asn = target.asn;
    info.mode = QueryMode::kInitial;
    resolver::AuthLogEntry entry;
    entry.time = world->loop.now();
    entry.client = target.addr;  // direct answer
    entry.client_port = 5353;
    entry.server = IpAddr::must_parse("199.7.2.1");
    entry.qname = codec.encode(info);
    collector.observe(entry);
  }

  [[nodiscard]] TargetInfo v4_target(std::size_t skip = 0) const {
    for (const TargetInfo& t : world->targets) {
      if (t.addr.is_v4() && world->network->host_at(t.addr) != nullptr) {
        if (skip == 0) return t;
        --skip;
      }
    }
    ADD_FAILURE() << "world has too few v4 targets";
    return {};
  }

  [[nodiscard]] std::map<QueryMode, int> mode_counts(
      const IpAddr& target) const {
    std::map<QueryMode, int> counts;
    const auto it = sent.find(target);
    if (it == sent.end()) return counts;
    for (const SentQuery& q : it->second) ++counts[q.mode];
    return counts;
  }
};

TEST(Followup, BatteryIsTenTenOpenAndTcp) {
  Fixture f;
  const TargetInfo target = f.v4_target();
  const IpAddr spoofed = IpAddr::must_parse("198.51.100.7");

  f.observe_hit(target, spoofed);
  EXPECT_EQ(f.engine.batteries_sent(), 1u);
  f.world->loop.run();

  const auto counts = f.mode_counts(target.addr);
  EXPECT_EQ(counts.at(QueryMode::kV4Only), 10);
  EXPECT_EQ(counts.at(QueryMode::kV6Only), 10);
  EXPECT_EQ(counts.at(QueryMode::kOpen), 1);
  EXPECT_EQ(counts.at(QueryMode::kTcp), 1);
  EXPECT_EQ(counts.count(QueryMode::kInitial), 0u);

  // Spoofed legs reuse the source that hit; the open check uses the
  // vantage's real address.
  const auto vantage_v4 = f.world->vantage->address(net::IpFamily::kV4);
  ASSERT_TRUE(vantage_v4.has_value());
  for (const SentQuery& q : f.sent.at(target.addr)) {
    if (q.mode == QueryMode::kOpen) {
      EXPECT_EQ(q.spoofed_src, *vantage_v4);
    } else {
      EXPECT_EQ(q.spoofed_src, spoofed);
    }
  }
}

TEST(Followup, QueriesAreSpacedOneSecondApartInModeOrder) {
  Fixture f;
  const TargetInfo target = f.v4_target();
  f.observe_hit(target, IpAddr::must_parse("198.51.100.7"));
  f.world->loop.run();

  const auto& queries = f.sent.at(target.addr);
  ASSERT_EQ(queries.size(), 22u);
  const FollowupConfig config;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].at,
              static_cast<sim::SimTime>(i + 1) * config.spacing)
        << "query " << i;
    const QueryMode expect = i < 10   ? QueryMode::kV4Only
                             : i < 20 ? QueryMode::kV6Only
                             : i < 21 ? QueryMode::kOpen
                                      : QueryMode::kTcp;
    EXPECT_EQ(queries[i].mode, expect) << "query " << i;
  }
}

TEST(Followup, FirstHitGatingSendsOneBatteryPerTarget) {
  Fixture f;
  const TargetInfo target = f.v4_target();

  f.observe_hit(target, IpAddr::must_parse("198.51.100.7"));
  EXPECT_EQ(f.engine.batteries_sent(), 1u);
  // A second qualifying hit from a different spoofed source: gated.
  f.observe_hit(target, IpAddr::must_parse("203.0.113.9"));
  EXPECT_EQ(f.engine.batteries_sent(), 1u);
  f.world->loop.run();

  const auto counts = f.mode_counts(target.addr);
  EXPECT_EQ(counts.at(QueryMode::kV4Only), 10);
  EXPECT_EQ(counts.at(QueryMode::kOpen), 1);

  // A different target is its own battery.
  const TargetInfo other = f.v4_target(1);
  ASSERT_FALSE(other.addr == target.addr);
  f.observe_hit(other, IpAddr::must_parse("198.51.100.7"));
  EXPECT_EQ(f.engine.batteries_sent(), 2u);
  f.world->loop.run();
  EXPECT_EQ(f.mode_counts(other.addr).at(QueryMode::kV4Only), 10);
}

}  // namespace
