// Unit + property tests: experiment query-name codec.
#include <gtest/gtest.h>

#include "scanner/qname.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace cd;
using dns::DnsName;
using net::IpAddr;
using scanner::QnameCodec;
using scanner::QnameInfo;
using scanner::QueryMode;

QnameCodec codec() {
  return QnameCodec(DnsName::must_parse("dns-lab.org"), "x1");
}

TEST(QnameCodec, EncodeLayout) {
  QnameInfo info;
  info.ts = 123456;
  info.src = IpAddr::must_parse("192.168.0.10");
  info.dst = IpAddr::must_parse("20.1.2.3");
  info.asn = 64512;
  info.mode = QueryMode::kInitial;
  EXPECT_EQ(codec().encode(info).to_string(),
            "123456.c0a8000a.14010203.64512.m0.x1.dns-lab.org.");
}

TEST(QnameCodec, SubzonePerMode) {
  const auto c = codec();
  EXPECT_EQ(c.zone_apex(QueryMode::kInitial).to_string(), "dns-lab.org.");
  EXPECT_EQ(c.zone_apex(QueryMode::kOpen).to_string(), "dns-lab.org.");
  EXPECT_EQ(c.zone_apex(QueryMode::kV4Only).to_string(), "v4.dns-lab.org.");
  EXPECT_EQ(c.zone_apex(QueryMode::kV6Only).to_string(), "v6.dns-lab.org.");
  EXPECT_EQ(c.zone_apex(QueryMode::kTcp).to_string(), "tcp.dns-lab.org.");
}

TEST(QnameCodec, FullRoundTripAllModes) {
  const auto c = codec();
  for (const QueryMode mode :
       {QueryMode::kInitial, QueryMode::kV4Only, QueryMode::kV6Only,
        QueryMode::kTcp, QueryMode::kOpen}) {
    QnameInfo info;
    info.ts = 987654321;
    info.src = IpAddr::must_parse("2001:4860::8888");
    info.dst = IpAddr::must_parse("2400:19::7");
    info.asn = 4200000001;
    info.mode = mode;
    const auto decoded = c.decode(c.encode(info));
    ASSERT_TRUE(decoded.in_experiment);
    ASSERT_TRUE(decoded.full());
    EXPECT_EQ(*decoded.ts, info.ts);
    EXPECT_EQ(*decoded.src, info.src);
    EXPECT_EQ(*decoded.dst, info.dst);
    EXPECT_EQ(*decoded.asn, info.asn);
    EXPECT_EQ(*decoded.mode, mode);
  }
}

TEST(QnameCodec, RandomRoundTripProperty) {
  const auto c = codec();
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    QnameInfo info;
    info.ts = static_cast<sim::SimTime>(rng.u64() >> 2);
    const bool v4 = rng.chance(0.5);
    info.src = v4 ? IpAddr::v4(static_cast<std::uint32_t>(rng.u64()))
                  : IpAddr::v6(rng.u64(), rng.u64());
    info.dst = v4 ? IpAddr::v4(static_cast<std::uint32_t>(rng.u64()))
                  : IpAddr::v6(rng.u64(), rng.u64());
    info.asn = static_cast<sim::Asn>(rng.u64());
    info.mode = static_cast<QueryMode>(rng.uniform(5));
    const auto decoded = c.decode(c.encode(info));
    ASSERT_TRUE(decoded.full());
    ASSERT_EQ(*decoded.ts, info.ts);
    ASSERT_EQ(*decoded.src, info.src);
    ASSERT_EQ(*decoded.dst, info.dst);
    ASSERT_EQ(*decoded.asn, info.asn);
    ASSERT_EQ(*decoded.mode, info.mode);
  }
}

TEST(QnameCodec, PartialDecodeMinimizedNames) {
  const auto c = codec();
  // What a strictly QNAME-minimizing resolver leaks: the keyword suffix only.
  auto d = c.decode(DnsName::must_parse("x1.dns-lab.org"));
  EXPECT_TRUE(d.in_experiment);
  EXPECT_FALSE(d.full());
  EXPECT_FALSE(d.mode.has_value());

  d = c.decode(DnsName::must_parse("x1.v4.dns-lab.org"));
  EXPECT_TRUE(d.in_experiment);
  EXPECT_FALSE(d.full());
  ASSERT_TRUE(d.mode.has_value());  // inferred from the subzone tag
  EXPECT_EQ(*d.mode, QueryMode::kV4Only);

  // One more label: mode explicit, asn still missing.
  d = c.decode(DnsName::must_parse("m0.x1.dns-lab.org"));
  EXPECT_TRUE(d.in_experiment);
  EXPECT_EQ(*d.mode, QueryMode::kInitial);
  EXPECT_FALSE(d.asn.has_value());

  // With ASN but no dst.
  d = c.decode(DnsName::must_parse("64512.m0.x1.dns-lab.org"));
  EXPECT_EQ(*d.asn, 64512u);
  EXPECT_FALSE(d.dst.has_value());
  EXPECT_FALSE(d.full());
}

TEST(QnameCodec, ForeignNamesRejected) {
  const auto c = codec();
  EXPECT_FALSE(c.decode(DnsName::must_parse("www.example.com")).in_experiment);
  EXPECT_FALSE(c.decode(DnsName::must_parse("dns-lab.org")).in_experiment);
  // Right base but wrong keyword.
  EXPECT_FALSE(
      c.decode(DnsName::must_parse("1.2.3.4.m0.other.dns-lab.org"))
          .in_experiment);
  // Keyword present but garbage fields: in-experiment, not attributable.
  const auto d =
      c.decode(DnsName::must_parse("nothex.zz.bad.m0.x1.dns-lab.org"));
  EXPECT_TRUE(d.in_experiment);
  EXPECT_FALSE(d.full());
}

TEST(QnameCodec, InconsistentModeZoneRejected) {
  const auto c = codec();
  // m1 (v4-only) under the v6 subzone: attribution refused.
  const auto d = c.decode(
      DnsName::must_parse("1.0a000001.0a000002.5.m1.x1.v6.dns-lab.org"));
  EXPECT_TRUE(d.in_experiment);
  EXPECT_FALSE(d.full());
}

TEST(QnameCodec, AddrCodec) {
  EXPECT_EQ(QnameCodec::encode_addr(IpAddr::must_parse("10.0.0.1")),
            "0a000001");
  EXPECT_EQ(QnameCodec::decode_addr("0a000001"),
            IpAddr::must_parse("10.0.0.1"));
  const auto v6 = IpAddr::must_parse("2001:db8::42");
  EXPECT_EQ(QnameCodec::decode_addr(QnameCodec::encode_addr(v6)), v6);
  EXPECT_FALSE(QnameCodec::decode_addr("zz"));
  EXPECT_FALSE(QnameCodec::decode_addr("0a00"));      // wrong length
  EXPECT_FALSE(QnameCodec::decode_addr("0a0000xy"));  // bad hex
}

TEST(QnameCodec, KeywordGuards) {
  EXPECT_THROW(QnameCodec(DnsName::must_parse("dns-lab.org"), "v4"),
               InvariantError);
  EXPECT_THROW(QnameCodec(DnsName::must_parse("dns-lab.org"), "tcp"),
               InvariantError);
  EXPECT_THROW(QnameCodec(DnsName::must_parse("dns-lab.org"), ""),
               InvariantError);
}

TEST(QnameCodec, CaseInsensitiveKeyword) {
  const QnameCodec c(DnsName::must_parse("dns-lab.org"), "X1");
  EXPECT_TRUE(c.decode(DnsName::must_parse("x1.DNS-LAB.org")).in_experiment);
}

TEST(QueryModeName, AllNamed) {
  EXPECT_EQ(scanner::query_mode_name(QueryMode::kInitial), "initial");
  EXPECT_EQ(scanner::query_mode_name(QueryMode::kTcp), "tcp");
  EXPECT_EQ(scanner::query_mode_name(QueryMode::kOpen), "open");
}

}  // namespace
