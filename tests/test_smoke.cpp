// End-to-end smoke: generate a small world, run the experiment, verify the
// pipeline produces sane, internally consistent results.
#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "core/experiment.h"
#include "ditl/world.h"

namespace {

using namespace cd;

TEST(Smoke, WorldGeneratesDeterministically) {
  const auto spec = ditl::small_world_spec();
  const auto w1 = ditl::generate_world(spec);
  const auto w2 = ditl::generate_world(spec);
  ASSERT_EQ(w1->targets.size(), w2->targets.size());
  for (std::size_t i = 0; i < w1->targets.size(); ++i) {
    EXPECT_EQ(w1->targets[i].addr, w2->targets[i].addr);
    EXPECT_EQ(w1->targets[i].asn, w2->targets[i].asn);
  }
  EXPECT_GT(w1->targets.size(), 50u);
  EXPECT_GT(w1->resolvers.size(), 30u);
}

TEST(Smoke, EndToEndExperiment) {
  const auto spec = ditl::small_world_spec();
  auto world = ditl::generate_world(spec);

  core::ExperimentConfig config;
  config.probe.duration = 30 * sim::kMinute;
  config.probe.per_query_spacing = 5 * sim::kSecond;
  core::Experiment experiment(*world, config);
  const core::ExperimentResults& results = experiment.run();

  // Probes went out and some resolutions reached our auth servers.
  EXPECT_GT(results.queries_sent, 1000u);
  EXPECT_GT(results.collector_stats.entries_seen, 0u);
  ASSERT_FALSE(results.records.empty());

  // Every reached target is a planted resolver in an AS lacking DSAV.
  std::size_t reachable = 0;
  for (const auto& [addr, rec] : results.records) {
    if (!rec.reachable()) continue;
    ++reachable;
    ASSERT_TRUE(world->truth_resolvers.count(addr))
        << addr.to_string() << " reached but never planted";
    const auto asn_it = world->truth_dsav.find(rec.asn);
    ASSERT_NE(asn_it, world->truth_dsav.end());
    if (asn_it->second) {
      // A DSAV-deploying AS can still be infiltrated — but only via
      // private/loopback sources, which DSAV (internal-address filtering)
      // does not cover unless martian filtering is also deployed.
      for (const scanner::SourceCategory cat : rec.categories_hit) {
        EXPECT_TRUE(cat == scanner::SourceCategory::kPrivate ||
                    cat == scanner::SourceCategory::kLoopback)
            << "AS " << rec.asn << " deploys DSAV yet was infiltrated via "
            << scanner::source_category_name(cat);
      }
    }
  }
  EXPECT_GT(reachable, 0u);

  // DSAV summary consistency.
  const auto summary = analysis::summarize_dsav(results.records,
                                                world->targets);
  EXPECT_GT(summary.v4.targets_total, 0u);
  EXPECT_LE(summary.v4.targets_reachable, summary.v4.targets_total);
  EXPECT_LE(summary.v4.asns_reachable, summary.v4.asns_total);
  EXPECT_GT(summary.v4.targets_reachable + summary.v6.targets_reachable, 0u);

  // Follow-ups produced port samples and open/closed evidence.
  std::size_t with_ports = 0, open_hits = 0;
  for (const auto& [addr, rec] : results.records) {
    if (rec.ports_v4.size() + rec.ports_v6.size() >= 8) ++with_ports;
    if (rec.open_hit) ++open_hits;
  }
  EXPECT_GT(with_ports, 0u);
  EXPECT_GT(open_hits, 0u);
  EXPECT_GT(results.followup_batteries, 0u);
}

}  // namespace
