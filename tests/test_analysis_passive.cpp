// Unit tests: §5.2.2 passive comparison rules.
#include <gtest/gtest.h>

#include "analysis/passive.h"
#include "ditl/world.h"

namespace {

using namespace cd;
using analysis::PassiveCapture;
using analysis::Records;
using net::IpAddr;

scanner::TargetRecord zero_range_record(const char* addr,
                                        std::uint16_t port) {
  scanner::TargetRecord rec;
  rec.target = IpAddr::must_parse(addr);
  rec.asn = 1;
  rec.first_hit_time = 1;
  rec.categories_hit = {scanner::SourceCategory::kOtherPrefix};
  rec.ports_v4.assign(10, port);
  return rec;
}

TEST(Passive, ClassifiesThreeWays) {
  Records records;
  records.emplace(IpAddr::must_parse("20.0.0.1"),
                  zero_range_record("20.0.0.1", 53));  // already fixed
  records.emplace(IpAddr::must_parse("20.0.0.2"),
                  zero_range_record("20.0.0.2", 53));  // regressed
  records.emplace(IpAddr::must_parse("20.0.0.3"),
                  zero_range_record("20.0.0.3", 53));  // no data
  records.emplace(IpAddr::must_parse("20.0.0.4"),
                  zero_range_record("20.0.0.4", 53));  // thin, mismatched

  PassiveCapture capture;
  capture[IpAddr::must_parse("20.0.0.1")] =
      std::vector<std::uint16_t>(12, 53);
  capture[IpAddr::must_parse("20.0.0.2")] = {1024, 5000, 60000, 2000, 3000,
                                             4000, 7000, 9000, 11000, 13000};
  capture[IpAddr::must_parse("20.0.0.4")] = {9999, 8888};  // neither rule

  const auto cmp = analysis::compare_with_passive(records, capture);
  EXPECT_EQ(cmp.zero_now, 4u);
  EXPECT_EQ(cmp.zero_then, 1u);
  EXPECT_EQ(cmp.varied_then, 1u);
  EXPECT_EQ(cmp.insufficient, 2u);
}

TEST(Passive, Condition2FewSamplesSamePortSuffices) {
  Records records;
  records.emplace(IpAddr::must_parse("20.0.0.1"),
                  zero_range_record("20.0.0.1", 4053));
  PassiveCapture capture;
  // Only 3 old queries, but all on exactly the active fixed port.
  capture[IpAddr::must_parse("20.0.0.1")] = {4053, 4053, 4053};
  const auto cmp = analysis::compare_with_passive(records, capture);
  EXPECT_EQ(cmp.zero_then, 1u);
  EXPECT_EQ(cmp.insufficient, 0u);
}

TEST(Passive, NonZeroRangeResolversIgnored) {
  Records records;
  auto rec = zero_range_record("20.0.0.1", 1000);
  rec.ports_v4 = {1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 9500};
  records.emplace(rec.target, rec);
  const auto cmp = analysis::compare_with_passive(records, {});
  EXPECT_EQ(cmp.zero_now, 0u);
}

TEST(Passive, WorldGeneratesComparableHistory) {
  const auto world = ditl::generate_world(ditl::small_world_spec());
  EXPECT_FALSE(world->passive_capture.empty());
  // Every capture entry belongs to a planted resolver.
  for (const auto& [addr, ports] : world->passive_capture) {
    EXPECT_TRUE(world->truth_resolvers.count(addr)) << addr.to_string();
    EXPECT_FALSE(ports.empty());
  }
}

}  // namespace
