// Unit tests: p0f-style fingerprint classification.
#include <gtest/gtest.h>

#include "analysis/p0f.h"
#include "sim/os_model.h"

namespace {

using namespace cd;
using analysis::P0fClass;
using analysis::P0fDatabase;
using net::IpAddr;
using net::Packet;

Packet syn_for(const sim::OsProfile& os, std::uint8_t hops = 10) {
  Packet syn = net::make_tcp(IpAddr::must_parse("20.0.0.1"), 40000,
                             IpAddr::must_parse("199.7.2.1"), 53,
                             net::TcpFlags{.syn = true});
  syn.ttl = static_cast<std::uint8_t>(os.fp.initial_ttl - hops);
  syn.tcp_window = os.fp.window;
  syn.tcp_options = os.fp.syn_options;
  return syn;
}

struct FpCase {
  sim::OsId os;
  P0fClass expected;
};

class FingerprintSweep : public ::testing::TestWithParam<FpCase> {};

TEST_P(FingerprintSweep, OsRegistryClassifies) {
  const auto& db = P0fDatabase::standard();
  const auto& os = sim::os_profile(GetParam().os);
  EXPECT_EQ(db.classify(syn_for(os)), GetParam().expected) << os.name;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, FingerprintSweep,
    ::testing::Values(
        FpCase{sim::OsId::kUbuntu1604, P0fClass::kLinux},
        FpCase{sim::OsId::kUbuntu1904, P0fClass::kLinux},
        FpCase{sim::OsId::kUbuntu1004, P0fClass::kLinux},
        FpCase{sim::OsId::kFreeBsd113, P0fClass::kFreeBsd},
        FpCase{sim::OsId::kFreeBsd121, P0fClass::kFreeBsd},
        FpCase{sim::OsId::kWin2003, P0fClass::kWindows},
        FpCase{sim::OsId::kWin2012, P0fClass::kWindows},
        FpCase{sim::OsId::kWin2019, P0fClass::kWindows},
        FpCase{sim::OsId::kBaiduLike, P0fClass::kBaiduSpider},
        // The stand-ins for the ~90% p0f cannot identify.
        FpCase{sim::OsId::kEmbeddedCpe, P0fClass::kUnknown},
        FpCase{sim::OsId::kMiddleboxFronted, P0fClass::kUnknown}));

TEST(P0f, TtlDistanceTolerance) {
  const auto& db = P0fDatabase::standard();
  const auto& linux = sim::os_profile(sim::OsId::kUbuntu1904);
  // 31 hops away: still matched.
  EXPECT_EQ(db.classify(syn_for(linux, 31)), P0fClass::kLinux);
  // 32+ hops: implausible, unmatched.
  EXPECT_EQ(db.classify(syn_for(linux, 32)), P0fClass::kUnknown);
}

TEST(P0f, TtlAboveInitialRejected) {
  const auto& db = P0fDatabase::standard();
  Packet syn = syn_for(sim::os_profile(sim::OsId::kUbuntu1904));
  syn.ttl = 65;  // above Linux's initial 64
  EXPECT_EQ(db.classify(syn), P0fClass::kUnknown);
}

TEST(P0f, WindowMismatchRejected) {
  const auto& db = P0fDatabase::standard();
  Packet syn = syn_for(sim::os_profile(sim::OsId::kUbuntu1904));
  syn.tcp_window = 64000;
  EXPECT_EQ(db.classify(syn), P0fClass::kUnknown);
}

TEST(P0f, OptionOrderMatters) {
  const auto& db = P0fDatabase::standard();
  Packet syn = syn_for(sim::os_profile(sim::OsId::kUbuntu1904));
  std::swap(syn.tcp_options[1], syn.tcp_options[2]);
  EXPECT_EQ(db.classify(syn), P0fClass::kUnknown);
}

TEST(P0f, NonSynRejected) {
  const auto& db = P0fDatabase::standard();
  Packet pkt = syn_for(sim::os_profile(sim::OsId::kUbuntu1904));
  pkt.tcp_flags.syn = false;
  pkt.tcp_flags.ack = true;
  EXPECT_EQ(db.classify(pkt), P0fClass::kUnknown);
  const Packet udp = net::make_udp(IpAddr::must_parse("20.0.0.1"), 1,
                                   IpAddr::must_parse("20.0.0.2"), 2, {});
  EXPECT_EQ(db.classify(udp), P0fClass::kUnknown);
}

TEST(P0f, CustomDatabase) {
  P0fDatabase db;
  EXPECT_EQ(db.classify(syn_for(sim::os_profile(sim::OsId::kUbuntu1904))),
            P0fClass::kUnknown);
  db.add({P0fClass::kLinux, "custom", 64, 29200, 1460,
          {net::TcpOptionKind::kMss, net::TcpOptionKind::kSackPermitted,
           net::TcpOptionKind::kTimestamp, net::TcpOptionKind::kNop,
           net::TcpOptionKind::kWindowScale}});
  EXPECT_EQ(db.classify(syn_for(sim::os_profile(sim::OsId::kUbuntu1904))),
            P0fClass::kLinux);
  EXPECT_EQ(db.signatures().size(), 1u);
}

TEST(P0f, ClassNames) {
  EXPECT_EQ(analysis::p0f_class_name(P0fClass::kUnknown), "unknown");
  EXPECT_EQ(analysis::p0f_class_name(P0fClass::kBaiduSpider), "BaiduSpider");
}

}  // namespace
