// The off-path cache-poisoning attacker plane (attack/poison.h): realized
// attack outcomes must be bit-identical across shard counts, streamed and
// materialized worlds, and spilled and in-memory merges; disabling the
// attacker must leave every digest bit-identical to the pre-attack-plane
// goldens; realized success must rank by port entropy exactly as the paper's
// classification predicts (fixed and sequential fall first, full-range
// randomizers survive); and a forged response that mismatches the pending
// query's TXID, port, source, or question must never be accepted.
#include <gtest/gtest.h>

#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/poisoning.h"
#include "attack/poison.h"
#include "core/parallel.h"
#include "ditl/world_spec.h"
#include "dns/cache.h"
#include "dns/message.h"
#include "dns/zone.h"
#include "net/packet.h"
#include "resolver/auth.h"
#include "resolver/port_alloc.h"
#include "resolver/recursive.h"
#include "resolver/software.h"
#include "scanner/qname.h"
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/network.h"
#include "sim/os_model.h"

namespace {

using namespace cd;
using attack::PoisonConfig;
using attack::PoisonRecord;
using attack::SpoofInjector;
using core::capture_digest;
using core::ExperimentConfig;
using core::results_digest;
using core::run_sharded_experiment;
using core::ShardedResults;
using dns::DnsMessage;
using dns::DnsName;
using dns::Rcode;
using dns::RrType;
using net::IpAddr;
using resolver::RecursiveResolver;
using resolver::ResolverConfig;
using scanner::QueryMode;

// --- campaign-level differential battery ------------------------------------

ditl::WorldSpec test_spec(std::uint64_t seed, int n_asns = 0) {
  ditl::WorldSpec spec = ditl::small_world_spec();
  spec.seed = seed;
  if (n_asns > 0) spec.n_asns = n_asns;
  return spec;
}

/// Differential spec: the paper's Table 4 band mix puts the poisonable
/// (fixed-port / sequential) bands at ~1.4% of resolvers, which a 14-AS
/// world rarely samples at all. Boost them so every seed materializes weak
/// victims — the layout-invariance claims are mix-independent, and realized
/// successes are what make the success-side assertions non-vacuous.
ditl::WorldSpec attack_spec(std::uint64_t seed) {
  ditl::WorldSpec spec = test_spec(seed, 14);
  spec.band_mix.zero = 0.20;
  spec.band_mix.low = 0.15;
  return spec;
}

PoisonConfig small_poison() {
  PoisonConfig pc;
  pc.rounds = 3;
  pc.burst = 16;
  pc.sites = 2;
  return pc;
}

ExperimentConfig test_config(std::size_t shards, bool stream,
                             const std::string& spill_dir = {}) {
  ExperimentConfig config;
  config.analyst = scanner::AnalystConfig{};  // exercise replay exclusion
  config.capture = core::CaptureSpec{};       // attack-trace forensics
  config.poison = small_poison();
  config.num_shards = shards;
  config.num_threads = shards > 1 ? 2 : 1;
  config.stream_worlds = stream;
  config.spill_dir = spill_dir;
  return config;
}

TEST(PoisonDifferential, DigestInvariantAcrossShardsStreamAndSpill) {
  const auto dir = std::filesystem::temp_directory_path() / "cd_poison_diff";
  std::filesystem::remove_all(dir);
  std::uint64_t total_successes = 0;
  for (const std::uint64_t seed :
       {std::uint64_t{42}, std::uint64_t{1337}, std::uint64_t{9001}}) {
    const auto spec = attack_spec(seed);
    const ShardedResults baseline =
        run_sharded_experiment(spec, test_config(1, /*stream=*/false));
    ASSERT_GT(baseline.merged.poison_records.size(), 0u) << "seed=" << seed;
    ASSERT_GT(baseline.merged.poison_triggers, 0u);
    std::uint64_t reachable = 0;
    for (const auto& [addr, rec] : baseline.merged.poison_records) {
      reachable += rec.reachable ? 1 : 0;
      if (rec.success) {
        ++total_successes;
        // Only profiles the paper classifies as weak can fall to an
        // off-path race: a success on a full-entropy profile would mean the
        // validation path or the injector is broken.
        EXPECT_TRUE(resolver::weak_txid(rec.software))
            << "seed=" << seed << ": strong randomizer "
            << rec.victim.to_string() << " was poisoned";
        EXPECT_GE(rec.success_round, 1u);
        EXPECT_GT(rec.poisoned_ttl, 0u);
      }
    }
    ASSERT_GT(reachable, 0u) << "seed=" << seed << ": no trigger crossed";
    const std::uint64_t want = results_digest(baseline.merged);

    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      // Capture bytes are pinned per shard count, not across counts: TCP
      // initial sequence numbers draw from each host's RNG in arrival
      // order, so re-slicing the scan across worlds legitimately reseeds
      // them (pre-existing seed behaviour, poison on or off). Everything in
      // results_digest — poison records included — must hold across counts.
      std::optional<std::uint64_t> want_capture;
      if (shards == 1) {
        want_capture = capture_digest(baseline.merged.capture);
      }
      for (const bool stream : {false, true}) {
        for (const bool spill : {false, true}) {
          if (shards == 1 && !stream && !spill) continue;  // the baseline
          const std::string spill_dir =
              spill ? (dir / ("s" + std::to_string(seed))).string()
                    : std::string{};
          const ShardedResults run = run_sharded_experiment(
              spec, test_config(shards, stream, spill_dir));
          EXPECT_EQ(results_digest(run.merged), want)
              << "seed=" << seed << " shards=" << shards
              << " stream=" << stream << " spill=" << spill;
          if (!want_capture) {
            want_capture = capture_digest(run.merged.capture);
          } else {
            EXPECT_EQ(capture_digest(run.merged.capture), *want_capture)
                << "seed=" << seed << " shards=" << shards
                << " stream=" << stream << " spill=" << spill;
          }
          EXPECT_EQ(run.merged.poison_records.size(),
                    baseline.merged.poison_records.size());
          EXPECT_EQ(run.merged.poison_triggers,
                    baseline.merged.poison_triggers);
          EXPECT_EQ(run.merged.poison_forged, baseline.merged.poison_forged);
        }
      }
    }
  }
  // Vacuous-battery guard: across the three seeds the attacker must
  // actually poison someone, or none of the success assertions bite.
  EXPECT_GT(total_successes, 0u);
  std::filesystem::remove_all(dir);
}

// Disabling the attacker must reproduce the exact digests the seed tree
// produced before the attack plane existed (values pinned from a build of
// the previous commit): the poison digest block, the spill v3 block, the
// weak-txid hook, and the anycast table must all be invisible when off.
TEST(PoisonDifferential, AttackerDisabledMatchesSeedGoldens) {
  struct Golden {
    std::uint64_t seed;
    std::uint64_t results;
    std::uint64_t capture;
  };
  const Golden goldens[] = {
      {42, 0xcd54a47d35eb2474ull, 0x9a7cb07e5ec22b47ull},
      {1337, 0xa8367bcc69b2120cull, 0x974eb168e4dd109cull},
      {9001, 0x794bf78001a668f0ull, 0x714424cba9c1f263ull},
  };
  for (const Golden& g : goldens) {
    ExperimentConfig config;
    config.analyst = scanner::AnalystConfig{};
    config.capture = core::CaptureSpec{};
    const ShardedResults out =
        run_sharded_experiment(test_spec(g.seed), config);
    EXPECT_TRUE(out.merged.poison_records.empty());
    EXPECT_EQ(out.merged.poison_triggers, 0u);
    EXPECT_EQ(results_digest(out.merged), g.results) << "seed=" << g.seed;
    EXPECT_EQ(capture_digest(out.merged.capture), g.capture)
        << "seed=" << g.seed;
  }
}

// --- controlled attack lab ---------------------------------------------------

/// A miniature world the SpoofInjector attacks directly: one root, one
/// anycast site serving the poison subzone, victims whose port allocator and
/// txid source the test picks. Victims are open resolvers, so triggers come
/// from the attacker's own (unrouted) address and reachability never gates
/// the outcome — only the entropy of the (port, txid) pair does.
struct AttackLab {
  sim::EventLoop loop;
  sim::Topology topology;
  sim::Network network{topology, loop, Rng(77)};

  const IpAddr root4 = IpAddr::must_parse("40.0.0.1");
  const IpAddr service = IpAddr::must_parse("11.3.0.53");
  const IpAddr attacker_addr = IpAddr::must_parse("11.66.6.6");
  const IpAddr poisoned = IpAddr::must_parse("11.66.0.66");
  scanner::QnameCodec codec{DnsName::must_parse("dns-lab.org"), "x1"};

  std::unique_ptr<sim::Host> root_host;
  std::unique_ptr<sim::Host> site_host;
  std::unique_ptr<resolver::AuthServer> root_auth;
  std::unique_ptr<resolver::AuthServer> site_auth;
  std::unique_ptr<SpoofInjector> injector;

  std::deque<sim::Host> victim_hosts;
  std::vector<std::unique_ptr<RecursiveResolver>> victims;
  std::map<IpAddr, RecursiveResolver*> by_addr;

  explicit AttackLab(const PoisonConfig& pc, std::uint64_t seed = 1) {
    topology.add_as(1);  // authoritative infrastructure
    topology.announce(1, net::Prefix::must_parse("40.0.0.0/16"));
    topology.add_as(2);  // victims
    topology.announce(2, net::Prefix::must_parse("41.0.0.0/16"));
    topology.add_as(3);  // the attacker: announces nothing, spoofs freely

    const auto& os = sim::os_profile(sim::OsId::kUbuntu1904);
    root_host = std::make_unique<sim::Host>(
        network, 1, os, std::vector<IpAddr>{root4}, Rng(1), "root");
    site_host = std::make_unique<sim::Host>(
        network, 1, os, std::vector<IpAddr>{service}, Rng(2), "site");
    network.add_anycast_site(service, site_host.get());

    dns::SoaRdata soa;
    soa.mname = DnsName::must_parse("ns.root");
    soa.rname = DnsName::must_parse("admin.root");
    soa.minimum = 60;
    const DnsName apex = codec.zone_apex(QueryMode::kPoison);
    const DnsName ns_name = apex.prepend("ns");
    auto root_zone = std::make_shared<dns::Zone>(DnsName(), soa);
    root_zone->add(dns::make_ns(apex, ns_name));
    root_zone->add(dns::make_a(ns_name, service));
    auto poison_zone = std::make_shared<dns::Zone>(apex, soa);
    poison_zone->add(dns::make_ns(apex, ns_name));
    poison_zone->add(dns::make_a(ns_name, service));
    poison_zone->add(dns::make_a(apex.prepend("*"), service));

    root_auth = std::make_unique<resolver::AuthServer>(*root_host);
    root_auth->add_zone(root_zone);
    site_auth = std::make_unique<resolver::AuthServer>(*site_host);
    site_auth->add_zone(poison_zone);

    injector = std::make_unique<SpoofInjector>(network, 3, attacker_addr,
                                               service, poisoned, codec, pc,
                                               seed);
    site_auth->add_observer([this](const resolver::AuthLogEntry& entry) {
      injector->observe_auth(entry);
    });
  }

  IpAddr add_victim(int idx, std::unique_ptr<resolver::PortAllocator> alloc,
                    std::unique_ptr<resolver::TxidSource> txid,
                    resolver::DnsSoftware software) {
    const IpAddr addr =
        IpAddr::v4(41, 0, static_cast<std::uint8_t>(1 + idx / 200),
                   static_cast<std::uint8_t>(10 + idx % 200));
    victim_hosts.emplace_back(network, 2,
                              sim::os_profile(sim::OsId::kEmbeddedCpe),
                              std::vector<IpAddr>{addr},
                              Rng(100 + static_cast<std::uint64_t>(idx)),
                              "victim-" + std::to_string(idx));
    ResolverConfig rc;
    rc.open = true;
    resolver::RootHints hints;
    hints.servers = {root4};
    auto res = std::make_unique<RecursiveResolver>(
        victim_hosts.back(), rc, hints, std::move(alloc),
        Rng(7'000 + static_cast<std::uint64_t>(idx)));
    if (txid) res->set_txid_source(std::move(txid));
    by_addr[addr] = res.get();
    victims.push_back(std::move(res));
    injector->add_victim({addr, 2, software, sim::OsId::kEmbeddedCpe,
                          /*open=*/true});
    return addr;
  }

  void run_and_finalize() {
    loop.run(50'000'000);
    injector->finalize([this](const IpAddr& a) -> RecursiveResolver* {
      const auto it = by_addr.find(a);
      return it == by_addr.end() ? nullptr : it->second;
    });
  }
};

std::unique_ptr<resolver::PortAllocator> small_pool(int idx) {
  std::vector<std::uint16_t> ports;
  for (int p = 0; p < 8; ++p) {
    ports.push_back(static_cast<std::uint16_t>(20'000 + 500 * idx + 37 * p));
  }
  return std::make_unique<resolver::SmallPoolAllocator>(
      std::move(ports), Rng(900 + static_cast<std::uint64_t>(idx)));
}

// --- realized-success-vs-port-entropy monotonicity ---------------------------

// The ladder the paper's classification implies: fixed port >= sequential
// port >= small pool >= full-range randomizer, with the weak end certain and
// the strong end untouched. Identical txid weakness within the weak classes
// isolates the port allocator as the only varying entropy source.
TEST(PoisonMonotonicity, SuccessRateFollowsPortEntropy) {
  PoisonConfig pc;
  pc.rounds = 6;
  pc.burst = 32;
  AttackLab lab(pc);

  constexpr int kPerClass = 6;
  std::vector<IpAddr> fixed, sequential, pool, random;
  for (int i = 0; i < kPerClass; ++i) {
    fixed.push_back(lab.add_victim(
        i, std::make_unique<resolver::FixedPortAllocator>(
               static_cast<std::uint16_t>(4'000 + i)),
        std::make_unique<resolver::SequentialTxidSource>(
            static_cast<std::uint16_t>(1'000 * i)),
        resolver::DnsSoftware::kBind8));
    sequential.push_back(lab.add_victim(
        100 + i,
        std::make_unique<resolver::SequentialAllocator>(
            10'000, 20'000, static_cast<std::uint16_t>(10'000 + 700 * i)),
        std::make_unique<resolver::SequentialTxidSource>(
            static_cast<std::uint16_t>(2'000 * i + 7)),
        resolver::DnsSoftware::kLegacySequential));
    pool.push_back(lab.add_victim(
        200 + i, small_pool(i),
        std::make_unique<resolver::SequentialTxidSource>(
            static_cast<std::uint16_t>(3'000 * i + 11)),
        resolver::DnsSoftware::kLegacySmallPool));
    random.push_back(lab.add_victim(
        300 + i,
        std::make_unique<resolver::UniformRangeAllocator>(
            1'024, 65'535, Rng(500 + static_cast<std::uint64_t>(i))),
        nullptr, resolver::DnsSoftware::kUnbound190));
  }
  lab.run_and_finalize();

  const auto rate = [&](const std::vector<IpAddr>& addrs) {
    int successes = 0;
    for (const IpAddr& a : addrs) {
      const auto it = lab.injector->records().find(a);
      EXPECT_NE(it, lab.injector->records().end()) << a.to_string();
      if (it == lab.injector->records().end()) continue;
      EXPECT_TRUE(it->second.reachable) << a.to_string();
      EXPECT_FALSE(it->second.observed_ports.empty()) << a.to_string();
      successes += it->second.success ? 1 : 0;
    }
    return static_cast<double>(successes) / kPerClass;
  };

  const double r_fixed = rate(fixed);
  const double r_seq = rate(sequential);
  const double r_pool = rate(pool);
  const double r_random = rate(random);

  // The weak end is certain, the strong end untouched, and the ladder is
  // monotone in between.
  EXPECT_EQ(r_fixed, 1.0);
  EXPECT_EQ(r_seq, 1.0);
  EXPECT_GT(r_pool, 0.0);
  EXPECT_EQ(r_random, 0.0);
  EXPECT_GE(r_fixed, r_seq);
  EXPECT_GE(r_seq, r_pool);
  EXPECT_GE(r_pool, r_random);

  // Round 0 scouts, round 1's burst is mistimed off the cold delegation
  // chain, so the first winnable race is round 2 — and the trackable
  // classes must win it immediately.
  for (const IpAddr& a : fixed) {
    EXPECT_EQ(lab.injector->records().at(a).success_round, 2u);
  }
  for (const IpAddr& a : sequential) {
    EXPECT_EQ(lab.injector->records().at(a).success_round, 2u);
  }

  // The analysis join must agree with the raw records and put the weak
  // profiles first: realized rates sort the rows, predictions back them.
  const analysis::PoisonReport report = analysis::summarize_poisoning(
      lab.injector->records(), pc, lab.injector->triggers_sent(),
      lab.injector->forged_sent());
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.victims, 4u * kPerClass);
  EXPECT_EQ(report.reachable, 4u * kPerClass);
  const analysis::PoisonProfileRow& worst = report.rows.front();
  EXPECT_TRUE(resolver::weak_txid(worst.software));
  EXPECT_EQ(worst.realized, 1.0);
  EXPECT_GT(worst.predicted, 0.99);
  const analysis::PoisonProfileRow& best = report.rows.back();
  EXPECT_EQ(best.software, resolver::DnsSoftware::kUnbound190);
  EXPECT_EQ(best.realized, 0.0);
  EXPECT_LT(best.predicted, 0.01);
  const std::string rendered = analysis::render_poisoning(report);
  EXPECT_NE(rendered.find("poisoned"), std::string::npos);
}

// A poisoned entry carries the attacker's TTL only as far as the victim's
// cache clamp allows: forged_ttl above CacheConfig::max_ttl must come back
// clamped, never verbatim.
TEST(PoisonMonotonicity, ForgedTtlEntersCacheClamped) {
  PoisonConfig pc;
  pc.rounds = 4;
  pc.burst = 16;
  ASSERT_GT(pc.forged_ttl, 86'400u);  // the default clamp
  AttackLab lab(pc);
  const IpAddr victim = lab.add_victim(
      0, std::make_unique<resolver::FixedPortAllocator>(4'053),
      std::make_unique<resolver::SequentialTxidSource>(100),
      resolver::DnsSoftware::kBind8);
  lab.run_and_finalize();

  const PoisonRecord& rec = lab.injector->records().at(victim);
  ASSERT_TRUE(rec.success);
  EXPECT_GT(rec.poisoned_ttl, 0u);
  EXPECT_LE(rec.poisoned_ttl, 86'400u);
}

// --- crafted-injection unit --------------------------------------------------

// One pending upstream query against a dead server, and a series of forged
// responses each wrong in exactly one dimension of the RFC 5452 check. None
// may be accepted; the fully-matching forgery then lands and poisons.
TEST(PoisonInjectionUnit, MismatchOnAnyDimensionIsNeverAccepted) {
  sim::EventLoop loop;
  sim::Topology topology;
  sim::Network network{topology, loop, Rng(13)};
  topology.add_as(1);
  topology.announce(1, net::Prefix::must_parse("40.0.0.0/16"));
  topology.add_as(2);
  topology.announce(2, net::Prefix::must_parse("41.0.0.0/16"));

  const IpAddr root4 = IpAddr::must_parse("40.0.0.1");  // never hosted: dead
  const IpAddr victim4 = IpAddr::must_parse("41.0.0.1");
  const IpAddr forged_addr = IpAddr::must_parse("11.66.0.66");

  sim::Host victim_host(network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
                        {victim4}, Rng(4), "victim");
  ResolverConfig rc;
  rc.open = true;
  rc.query_timeout = 5 * sim::kSecond;
  rc.max_retries = 0;
  resolver::RootHints hints;
  hints.servers = {root4};
  RecursiveResolver res(victim_host, rc, hints,
                        std::make_unique<resolver::FixedPortAllocator>(4'053),
                        Rng(5));
  res.set_txid_source(std::make_unique<resolver::SequentialTxidSource>(100));

  const DnsName qname = DnsName::must_parse("www.example.test");
  bool done = false;
  Rcode rcode = Rcode::kServFail;
  std::vector<dns::DnsRr> answer;
  res.resolve(qname, RrType::kA,
              [&](Rcode r, const std::vector<dns::DnsRr>& records) {
                done = true;
                rcode = r;
                answer = records;
              });

  // The resolver's only upstream query is now pending: root4, port 4053,
  // txid 100, question (www.example.test, A).
  const auto forge = [&](const IpAddr& src, std::uint16_t src_port,
                         std::uint16_t dst_port, std::uint16_t txid,
                         const DnsName& name) {
    DnsMessage fake = dns::make_response(
        dns::make_query(txid, name, RrType::kA, /*rd=*/false),
        Rcode::kNoError);
    fake.header.aa = true;
    fake.answers.push_back(dns::make_a(name, forged_addr, 600));
    network.send(net::make_udp(src, src_port, victim4, dst_port,
                               dns::encode_pooled(fake)),
                 /*origin_asn=*/1);
  };
  const DnsName other = DnsName::must_parse("other.example.test");
  loop.schedule_in(100 * sim::kMillisecond,
                   [&] { forge(root4, 53, 4'053, 177, qname); });  // bad txid
  loop.schedule_in(200 * sim::kMillisecond,
                   [&] { forge(root4, 53, 4'054, 100, qname); });  // bad port
  loop.schedule_in(300 * sim::kMillisecond,
                   [&] { forge(root4, 53, 4'053, 100, other); });  // bad qname
  loop.schedule_in(400 * sim::kMillisecond, [&] {
    forge(IpAddr::must_parse("40.0.0.2"), 53, 4'053, 100, qname);  // bad src
  });
  loop.schedule_in(500 * sim::kMillisecond,
                   [&] { forge(root4, 5'353, 4'053, 100, qname); });  // !53

  loop.run_until(590 * sim::kMillisecond);
  EXPECT_FALSE(done) << "a mismatched forgery was accepted";
  EXPECT_EQ(res.cache().lookup(qname, RrType::kA, loop.now()).kind,
            dns::CacheHitKind::kMiss);

  // The fully-matching forgery is accepted and poisons the cache.
  loop.schedule_in(10 * sim::kMillisecond,
                   [&] { forge(root4, 53, 4'053, 100, qname); });
  loop.run(1'000'000);
  ASSERT_TRUE(done);
  EXPECT_EQ(rcode, Rcode::kNoError);
  ASSERT_EQ(answer.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(answer[0].rdata).addr, forged_addr);
  const auto hit = res.cache().lookup(qname, RrType::kA, loop.now());
  ASSERT_EQ(hit.kind, dns::CacheHitKind::kPositive);
  EXPECT_EQ(std::get<dns::ARdata>(hit.records[0].rdata).addr, forged_addr);
  EXPECT_EQ(res.stats().upstream_queries, 1u);  // accepted before any retry
}

}  // namespace
