// The tentpole guarantee of the sharded runner: for any seed, a sharded
// parallel campaign produces exactly the evidence a serial campaign does —
// same records, same analysis tables, same digest — for every shard and
// thread count. Plus a determinism regression: same seed twice is
// bit-identical, different seeds are not.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "analysis/classify.h"
#include "core/parallel.h"
#include "ditl/world.h"
#include "scanner/prober.h"

namespace {

using cd::core::ExperimentConfig;
using cd::core::ExperimentResults;
using cd::core::results_digest;
using cd::core::run_sharded_experiment;
using cd::core::ShardedResults;

cd::ditl::WorldSpec test_spec(std::uint64_t seed) {
  cd::ditl::WorldSpec spec = cd::ditl::small_world_spec();
  spec.seed = seed;
  return spec;
}

ExperimentConfig test_config(std::size_t shards, std::size_t threads) {
  ExperimentConfig config;
  config.analyst = cd::scanner::AnalystConfig{};  // exercise the replay path
  config.num_shards = shards;
  config.num_threads = threads;
  return config;
}

/// Canonical CSV of the analysis tables built from merged results — the
/// downstream artifact the equivalence guarantee is really about.
std::string tables_csv(const ExperimentResults& results,
                       const cd::ditl::World& reference) {
  std::ostringstream csv;
  const auto summary =
      cd::analysis::summarize_dsav(results.records, reference.targets);
  csv << "dsav,v4," << summary.v4.targets_total << ','
      << summary.v4.targets_reachable << ',' << summary.v4.asns_total << ','
      << summary.v4.asns_reachable << '\n';
  csv << "dsav,v6," << summary.v6.targets_total << ','
      << summary.v6.targets_reachable << ',' << summary.v6.asns_total << ','
      << summary.v6.asns_reachable << '\n';

  const auto table =
      cd::analysis::build_category_table(results.records, reference.targets);
  for (std::size_t cat = 0; cat < cd::scanner::kSourceCategoryCount; ++cat) {
    for (int fam = 0; fam < 2; ++fam) {
      csv << "cat," << cat << ',' << fam << ','
          << table.inclusive[cat][fam].addrs << ','
          << table.inclusive[cat][fam].asns << ','
          << table.exclusive[cat][fam].addrs << ','
          << table.exclusive[cat][fam].asns << '\n';
    }
  }
  for (int fam = 0; fam < 2; ++fam) {
    csv << "tot," << fam << ',' << table.queried[fam].addrs << ','
        << table.queried[fam].asns << ',' << table.reachable[fam].addrs << ','
        << table.reachable[fam].asns << '\n';
  }
  return csv.str();
}

class ParallelEquivalence : public ::testing::Test {
 protected:
  /// The serial baseline (1 shard, 1 thread) everything is compared to.
  ShardedResults baseline(std::uint64_t seed) {
    return run_sharded_experiment(test_spec(seed), test_config(1, 1));
  }
};

TEST_F(ParallelEquivalence, ShardAndThreadCountsDoNotChangeResults) {
  for (const std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{1337}}) {
    const auto reference = cd::ditl::generate_world(test_spec(seed));
    const ShardedResults serial = baseline(seed);
    const std::uint64_t serial_digest = results_digest(serial.merged);
    const std::string serial_csv = tables_csv(serial.merged, *reference);
    ASSERT_GT(serial.merged.records.size(), 0u) << "campaign saw no targets";

    for (const auto& [shards, threads] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {2, 1}, {2, 4}, {8, 1}, {8, 4}}) {
      const ShardedResults sharded =
          run_sharded_experiment(test_spec(seed), test_config(shards, threads));
      EXPECT_EQ(results_digest(sharded.merged), serial_digest)
          << "seed=" << seed << " shards=" << shards << " threads=" << threads;
      EXPECT_EQ(tables_csv(sharded.merged, *reference), serial_csv)
          << "seed=" << seed << " shards=" << shards << " threads=" << threads;
      EXPECT_EQ(sharded.merged.records.size(), serial.merged.records.size());
      EXPECT_EQ(sharded.merged.queries_sent, serial.merged.queries_sent);
      EXPECT_EQ(sharded.merged.followup_batteries,
                serial.merged.followup_batteries);
      EXPECT_EQ(sharded.merged.analyst_replays, serial.merged.analyst_replays);
      EXPECT_EQ(sharded.shards.size(), shards);
    }
  }
}

TEST_F(ParallelEquivalence, RecordContentMatchesNotJustDigest) {
  // Digest collisions are astronomically unlikely but cheap to rule out on
  // one configuration: compare a full record field-by-field.
  const ShardedResults serial = baseline(42);
  const ShardedResults sharded =
      run_sharded_experiment(test_spec(42), test_config(8, 4));
  ASSERT_EQ(sharded.merged.records.size(), serial.merged.records.size());
  for (const auto& [addr, expect] : serial.merged.records) {
    const auto it = sharded.merged.records.find(addr);
    ASSERT_NE(it, sharded.merged.records.end()) << addr.to_string();
    const auto& got = it->second;
    EXPECT_EQ(got.asn, expect.asn);
    EXPECT_EQ(got.sources_hit, expect.sources_hit);
    EXPECT_EQ(got.categories_hit, expect.categories_hit);
    EXPECT_EQ(got.first_hit_source, expect.first_hit_source);
    EXPECT_EQ(got.direct_seen, expect.direct_seen);
    EXPECT_EQ(got.forwarded_seen, expect.forwarded_seen);
    EXPECT_EQ(got.forwarders_seen, expect.forwarders_seen);
    EXPECT_EQ(got.client_in_target_as, expect.client_in_target_as);
    EXPECT_EQ(got.ports_v4, expect.ports_v4);
    EXPECT_EQ(got.ports_v6, expect.ports_v6);
    EXPECT_EQ(got.open_hit, expect.open_hit);
    EXPECT_EQ(got.tcp_hit, expect.tcp_hit);
  }
  EXPECT_EQ(sharded.merged.qmin_asns, serial.merged.qmin_asns);
  EXPECT_EQ(sharded.merged.lifetime_excluded_targets,
            serial.merged.lifetime_excluded_targets);
}

TEST_F(ParallelEquivalence, ShardsPartitionTargetsByAs) {
  const auto world = cd::ditl::generate_world(test_spec(42));
  const std::size_t n_shards = 8;
  std::map<std::size_t, std::size_t> per_shard;
  std::map<cd::sim::Asn, std::size_t> as_shard;
  for (const auto& target : world->targets) {
    const std::size_t shard = cd::scanner::shard_of(target.asn, n_shards);
    ASSERT_LT(shard, n_shards);
    ++per_shard[shard];
    const auto [it, inserted] = as_shard.emplace(target.asn, shard);
    EXPECT_EQ(it->second, shard) << "AS " << target.asn << " split";
  }
  std::size_t total = 0;
  for (const auto& [shard, count] : per_shard) total += count;
  EXPECT_EQ(total, world->targets.size());
  // shard_of should actually spread ASes around, not collapse to one shard.
  EXPECT_GT(per_shard.size(), 1u);

  const ShardedResults sharded =
      run_sharded_experiment(test_spec(42), test_config(n_shards, 2));
  std::size_t assigned = 0;
  for (const auto& timing : sharded.shards) assigned += timing.targets;
  EXPECT_EQ(assigned, world->targets.size());
}

TEST_F(ParallelEquivalence, ProbePlaneCaptureIsByteIdenticalAcrossShards) {
  // The wire-level analogue of the digest guarantee: a probe-plane capture
  // (packets physically originating in the vantage AS) merged from N shards
  // must serialize to exactly the bytes of the serial campaign's capture.
  // Follow-ups are disabled because their *timing* keys off first-hit
  // arrival, which shared-cache warmness (and therefore sharding) perturbs;
  // the probe schedule itself is a pure function of the global target index.
  auto config = [](std::size_t shards, std::size_t threads) {
    ExperimentConfig c = test_config(shards, threads);
    c.analyst.reset();
    c.followups = false;
    cd::core::CaptureSpec capture;
    capture.include_drops = true;
    capture.probes_only = true;
    c.capture = capture;
    return c;
  };

  const ShardedResults serial =
      run_sharded_experiment(test_spec(42), config(1, 1));
  ASSERT_FALSE(serial.merged.capture.records.empty())
      << "campaign captured no probes";
  const auto serial_pcap = serial.merged.capture.to_pcap();
  const auto serial_index = serial.merged.capture.to_index();
  const std::uint64_t serial_digest =
      cd::core::capture_digest(serial.merged.capture);

  for (const auto& [shards, threads] :
       std::vector<std::pair<std::size_t, std::size_t>>{{2, 1}, {4, 2}}) {
    const ShardedResults sharded =
        run_sharded_experiment(test_spec(42), config(shards, threads));
    EXPECT_EQ(cd::core::capture_digest(sharded.merged.capture), serial_digest)
        << "shards=" << shards << " threads=" << threads;
    EXPECT_EQ(sharded.merged.capture.to_pcap(), serial_pcap)
        << "shards=" << shards << " threads=" << threads;
    EXPECT_EQ(sharded.merged.capture.to_index(), serial_index)
        << "shards=" << shards << " threads=" << threads;
  }
}

TEST(ParallelDeterminism, SameSeedSameDigestAcrossRuns) {
  const auto first =
      run_sharded_experiment(test_spec(42), test_config(4, 2));
  const auto second =
      run_sharded_experiment(test_spec(42), test_config(4, 2));
  EXPECT_EQ(results_digest(first.merged), results_digest(second.merged));
  EXPECT_EQ(first.merged.queries_sent, second.merged.queries_sent);
}

TEST(ParallelDeterminism, DifferentSeedsDiverge) {
  const auto a = run_sharded_experiment(test_spec(42), test_config(2, 2));
  const auto b = run_sharded_experiment(test_spec(1337), test_config(2, 2));
  EXPECT_NE(results_digest(a.merged), results_digest(b.merged));
}

TEST(MergeResults, SumsCountersAndRejectsOverlap) {
  ExperimentResults a;
  a.queries_sent = 3;
  a.followup_batteries = 1;
  a.collector_stats.entries_seen = 10;
  a.network_stats.sent = 7;
  a.qmin_asns = {1, 2};
  cd::scanner::TargetRecord ra;
  ra.target = cd::net::IpAddr::v4(10, 0, 0, 1);
  a.records.emplace(ra.target, ra);

  ExperimentResults b;
  b.queries_sent = 5;
  b.followup_batteries = 2;
  b.collector_stats.entries_seen = 4;
  b.network_stats.sent = 9;
  b.qmin_asns = {2, 3};
  cd::scanner::TargetRecord rb;
  rb.target = cd::net::IpAddr::v4(10, 0, 0, 2);
  b.records.emplace(rb.target, rb);

  const ExperimentResults merged = cd::core::merge_results({a, b});
  EXPECT_EQ(merged.queries_sent, 8u);
  EXPECT_EQ(merged.followup_batteries, 3u);
  EXPECT_EQ(merged.collector_stats.entries_seen, 14u);
  EXPECT_EQ(merged.network_stats.sent, 16u);
  EXPECT_EQ(merged.qmin_asns, (std::set<cd::sim::Asn>{1, 2, 3}));
  EXPECT_EQ(merged.records.size(), 2u);

  // A target present in two shards means the AS partition is broken.
  ExperimentResults dup;
  dup.records.emplace(ra.target, ra);
  EXPECT_THROW((void)cd::core::merge_results({a, dup}), std::exception);
}

}  // namespace
