// Unit tests: resolver cache — TTL expiry, decay, negatives, RFC 8020.
#include <gtest/gtest.h>

#include "dns/cache.h"
#include "util/error.h"

namespace {

using namespace cd;
using dns::Cache;
using dns::CacheHitKind;
using dns::DnsName;
using dns::RrType;
using net::IpAddr;

constexpr dns::CacheTime kSec = 1'000'000;

TEST(Cache, MissOnEmpty) {
  Cache cache;
  EXPECT_EQ(cache.lookup(DnsName::must_parse("a.org"), RrType::kA, 0).kind,
            CacheHitKind::kMiss);
}

TEST(Cache, PositiveHitAndExpiry) {
  Cache cache;
  const auto name = DnsName::must_parse("a.org");
  cache.insert_positive({dns::make_a(name, IpAddr::must_parse("192.0.2.1"), 60)},
                        0);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 59 * kSec).kind,
            CacheHitKind::kPositive);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 60 * kSec).kind,
            CacheHitKind::kMiss);
}

TEST(Cache, TtlDecaysOnHit) {
  Cache cache;
  const auto name = DnsName::must_parse("a.org");
  cache.insert_positive({dns::make_a(name, IpAddr::must_parse("192.0.2.1"), 100)},
                        0);
  const auto hit = cache.lookup(name, RrType::kA, 40 * kSec);
  ASSERT_EQ(hit.kind, CacheHitKind::kPositive);
  EXPECT_EQ(hit.records[0].ttl, 60u);
}

TEST(Cache, RrsetTtlIsMinimum) {
  Cache cache;
  const auto name = DnsName::must_parse("a.org");
  cache.insert_positive({dns::make_a(name, IpAddr::must_parse("192.0.2.1"), 100),
                         dns::make_a(name, IpAddr::must_parse("192.0.2.2"), 10)},
                        0);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 11 * kSec).kind,
            CacheHitKind::kMiss);
}

TEST(Cache, TypeSeparation) {
  Cache cache;
  const auto name = DnsName::must_parse("a.org");
  cache.insert_positive({dns::make_a(name, IpAddr::must_parse("192.0.2.1"), 60)},
                        0);
  EXPECT_EQ(cache.lookup(name, RrType::kAaaa, 0).kind, CacheHitKind::kMiss);
}

TEST(Cache, MixedRrsetRejected) {
  Cache cache;
  EXPECT_THROW(
      cache.insert_positive(
          {dns::make_a(DnsName::must_parse("a.org"),
                       IpAddr::must_parse("192.0.2.1")),
           dns::make_a(DnsName::must_parse("b.org"),
                       IpAddr::must_parse("192.0.2.2"))},
          0),
      InvariantError);
}

TEST(Cache, NegativeNameHit) {
  Cache cache;
  cache.insert_nxdomain(DnsName::must_parse("gone.org"), 300, 0);
  EXPECT_EQ(cache.lookup(DnsName::must_parse("gone.org"), RrType::kA, 0).kind,
            CacheHitKind::kNegativeName);
  EXPECT_EQ(
      cache.lookup(DnsName::must_parse("gone.org"), RrType::kA, 301 * kSec)
          .kind,
      CacheHitKind::kMiss);
}

TEST(Cache, Rfc8020AncestorCoversDescendants) {
  Cache cache;  // rfc8020 on by default
  cache.insert_nxdomain(DnsName::must_parse("x1.dns-lab.org"), 300, 0);
  // This is the paper's §3.6.4 mechanism: the NXDOMAIN for the keyword label
  // suppresses every later experiment query through this resolver.
  EXPECT_EQ(cache
                .lookup(DnsName::must_parse("999.aa.bb.1.m0.x1.dns-lab.org"),
                        RrType::kA, 10 * kSec)
                .kind,
            CacheHitKind::kNegativeName);
  // Parents and siblings are not covered.
  EXPECT_EQ(cache.lookup(DnsName::must_parse("dns-lab.org"), RrType::kA, 0).kind,
            CacheHitKind::kMiss);
  EXPECT_EQ(
      cache.lookup(DnsName::must_parse("x2.dns-lab.org"), RrType::kA, 0).kind,
      CacheHitKind::kMiss);
}

TEST(Cache, Rfc8020CanBeDisabled) {
  dns::CacheConfig config;
  config.rfc8020 = false;
  Cache cache(config);
  cache.insert_nxdomain(DnsName::must_parse("x1.dns-lab.org"), 300, 0);
  EXPECT_EQ(cache
                .lookup(DnsName::must_parse("sub.x1.dns-lab.org"), RrType::kA,
                        0)
                .kind,
            CacheHitKind::kMiss);
  // The exact name still hits.
  EXPECT_EQ(
      cache.lookup(DnsName::must_parse("x1.dns-lab.org"), RrType::kA, 0).kind,
      CacheHitKind::kNegativeName);
}

TEST(Cache, NegativeTypeHit) {
  Cache cache;
  const auto name = DnsName::must_parse("a.org");
  cache.insert_nodata(name, RrType::kAaaa, 60, 0);
  EXPECT_EQ(cache.lookup(name, RrType::kAaaa, 0).kind,
            CacheHitKind::kNegativeType);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 0).kind, CacheHitKind::kMiss);
  EXPECT_EQ(cache.lookup(name, RrType::kAaaa, 61 * kSec).kind,
            CacheHitKind::kMiss);
}

TEST(Cache, MaxTtlClamp) {
  dns::CacheConfig config;
  config.max_ttl = 10;
  Cache cache(config);
  const auto name = DnsName::must_parse("a.org");
  cache.insert_positive(
      {dns::make_a(name, IpAddr::must_parse("192.0.2.1"), 100000)}, 0);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 11 * kSec).kind,
            CacheHitKind::kMiss);
  cache.insert_nxdomain(DnsName::must_parse("n.org"), 100000, 0);
  EXPECT_EQ(cache.lookup(DnsName::must_parse("n.org"), RrType::kA, 11 * kSec)
                .kind,
            CacheHitKind::kMiss);
}

TEST(Cache, PurgeRemovesExpired) {
  Cache cache;
  cache.insert_positive({dns::make_a(DnsName::must_parse("a.org"),
                                     IpAddr::must_parse("192.0.2.1"), 10)},
                        0);
  cache.insert_nxdomain(DnsName::must_parse("b.org"), 10, 0);
  cache.insert_nodata(DnsName::must_parse("c.org"), RrType::kA, 1000, 0);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.purge(11 * kSec), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, EmptyRrsetIgnored) {
  Cache cache;
  cache.insert_positive({}, 0);
  EXPECT_EQ(cache.size(), 0u);
}

// --- adversarial insertions (off-path poisoning aftermath) -------------------
//
// What a cache does with attacker-shaped data once the resolver's response
// validation has been beaten: forged week-long TTLs must clamp, poisoned
// entries must still expire and be re-poisonable only for their clamped
// lifetime, a planted name must never contaminate its neighbors, and an
// attacker flooding distinct names must not be able to evict a live entry.

TEST(CacheAdversarial, ForgedTtlIsClampedToMaxTtl) {
  Cache cache;  // default max_ttl 86400 (1 day)
  const auto name = DnsName::must_parse("victim.example");
  // A week-long TTL, as the attack plane forges (PoisonConfig::forged_ttl).
  cache.insert_positive(
      {dns::make_a(name, IpAddr::must_parse("11.66.0.66"), 604800)}, 0);
  const auto hit = cache.lookup(name, RrType::kA, 0);
  ASSERT_EQ(hit.kind, CacheHitKind::kPositive);
  // The decayed TTL visible to clients never exceeds the clamp...
  EXPECT_EQ(hit.records[0].ttl, 86400u);
  // ...and the entry is gone at clamp expiry, not at the forged horizon.
  EXPECT_EQ(cache.lookup(name, RrType::kA, 86400 * kSec).kind,
            CacheHitKind::kMiss);
}

TEST(CacheAdversarial, PoisonedEntryExpiresAndCanBeReplaced) {
  Cache cache;
  const auto name = DnsName::must_parse("victim.example");
  cache.insert_positive(
      {dns::make_a(name, IpAddr::must_parse("11.66.0.66"), 300)}, 0);
  // Refreshing the poison mid-lifetime restarts the clock from `now`, so the
  // attacker holds the name only by re-winning the race each TTL.
  cache.insert_positive(
      {dns::make_a(name, IpAddr::must_parse("11.66.0.66"), 300)}, 200 * kSec);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 450 * kSec).kind,
            CacheHitKind::kPositive);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 500 * kSec).kind,
            CacheHitKind::kMiss);
  // After expiry the legitimate answer takes the slot back cleanly.
  cache.insert_positive(
      {dns::make_a(name, IpAddr::must_parse("192.0.2.1"), 60)}, 500 * kSec);
  const auto hit = cache.lookup(name, RrType::kA, 501 * kSec);
  ASSERT_EQ(hit.kind, CacheHitKind::kPositive);
  EXPECT_EQ(std::get<dns::ARdata>(hit.records[0].rdata).addr,
            IpAddr::must_parse("192.0.2.1"));
}

TEST(CacheAdversarial, PoisonedNameDoesNotContaminateNeighbors) {
  Cache cache;
  const auto good = DnsName::must_parse("www.example.test");
  const auto sibling = DnsName::must_parse("mail.example.test");
  const auto parent = DnsName::must_parse("example.test");
  cache.insert_positive(
      {dns::make_a(good, IpAddr::must_parse("192.0.2.1"), 600)}, 0);
  // The attacker plants a deep name under the same zone.
  const auto planted = DnsName::must_parse("evil.www.example.test");
  cache.insert_positive(
      {dns::make_a(planted, IpAddr::must_parse("11.66.0.66"), 600)}, 0);
  // Only the planted owner answers with the planted address.
  const auto hit = cache.lookup(good, RrType::kA, 1 * kSec);
  ASSERT_EQ(hit.kind, CacheHitKind::kPositive);
  EXPECT_EQ(std::get<dns::ARdata>(hit.records[0].rdata).addr,
            IpAddr::must_parse("192.0.2.1"));
  EXPECT_EQ(cache.lookup(sibling, RrType::kA, 1 * kSec).kind,
            CacheHitKind::kMiss);
  EXPECT_EQ(cache.lookup(parent, RrType::kA, 1 * kSec).kind,
            CacheHitKind::kMiss);
  // Nor does it bleed across types on its own owner.
  EXPECT_EQ(cache.lookup(planted, RrType::kAaaa, 1 * kSec).kind,
            CacheHitKind::kMiss);
}

TEST(CacheAdversarial, AttackerFillCannotEvictLiveEntries) {
  dns::CacheConfig config;
  config.max_entries = 64;
  Cache cache(config);
  const auto target = DnsName::must_parse("www.example.test");
  cache.insert_positive(
      {dns::make_a(target, IpAddr::must_parse("192.0.2.1"), 3600)}, 0);
  // Flood far past the configured capacity with distinct throwaway names.
  // The threshold triggers a purge, but purge removes only *expired*
  // entries: unexpired legitimate data is never sacrificed to make room.
  for (int i = 0; i < 1000; ++i) {
    const auto junk =
        DnsName::must_parse(("x" + std::to_string(i) + ".junk.example")
                                .c_str());
    cache.insert_positive(
        {dns::make_a(junk, IpAddr::must_parse("11.66.0.66"), 30)}, 1 * kSec);
  }
  const auto hit = cache.lookup(target, RrType::kA, 2 * kSec);
  ASSERT_EQ(hit.kind, CacheHitKind::kPositive);
  EXPECT_EQ(std::get<dns::ARdata>(hit.records[0].rdata).addr,
            IpAddr::must_parse("192.0.2.1"));
  // Once the junk TTLs lapse, the flood purges itself on the next
  // over-threshold insert instead of accumulating without bound.
  cache.insert_positive(
      {dns::make_a(DnsName::must_parse("last.junk.example"),
                   IpAddr::must_parse("11.66.0.66"), 30)},
      40 * kSec);
  EXPECT_LE(cache.size(), 3u);  // target + final insert (+ slack)
  EXPECT_EQ(cache.lookup(target, RrType::kA, 40 * kSec).kind,
            CacheHitKind::kPositive);
}

}  // namespace
