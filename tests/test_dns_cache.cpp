// Unit tests: resolver cache — TTL expiry, decay, negatives, RFC 8020.
#include <gtest/gtest.h>

#include "dns/cache.h"
#include "util/error.h"

namespace {

using namespace cd;
using dns::Cache;
using dns::CacheHitKind;
using dns::DnsName;
using dns::RrType;
using net::IpAddr;

constexpr dns::CacheTime kSec = 1'000'000;

TEST(Cache, MissOnEmpty) {
  Cache cache;
  EXPECT_EQ(cache.lookup(DnsName::must_parse("a.org"), RrType::kA, 0).kind,
            CacheHitKind::kMiss);
}

TEST(Cache, PositiveHitAndExpiry) {
  Cache cache;
  const auto name = DnsName::must_parse("a.org");
  cache.insert_positive({dns::make_a(name, IpAddr::must_parse("192.0.2.1"), 60)},
                        0);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 59 * kSec).kind,
            CacheHitKind::kPositive);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 60 * kSec).kind,
            CacheHitKind::kMiss);
}

TEST(Cache, TtlDecaysOnHit) {
  Cache cache;
  const auto name = DnsName::must_parse("a.org");
  cache.insert_positive({dns::make_a(name, IpAddr::must_parse("192.0.2.1"), 100)},
                        0);
  const auto hit = cache.lookup(name, RrType::kA, 40 * kSec);
  ASSERT_EQ(hit.kind, CacheHitKind::kPositive);
  EXPECT_EQ(hit.records[0].ttl, 60u);
}

TEST(Cache, RrsetTtlIsMinimum) {
  Cache cache;
  const auto name = DnsName::must_parse("a.org");
  cache.insert_positive({dns::make_a(name, IpAddr::must_parse("192.0.2.1"), 100),
                         dns::make_a(name, IpAddr::must_parse("192.0.2.2"), 10)},
                        0);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 11 * kSec).kind,
            CacheHitKind::kMiss);
}

TEST(Cache, TypeSeparation) {
  Cache cache;
  const auto name = DnsName::must_parse("a.org");
  cache.insert_positive({dns::make_a(name, IpAddr::must_parse("192.0.2.1"), 60)},
                        0);
  EXPECT_EQ(cache.lookup(name, RrType::kAaaa, 0).kind, CacheHitKind::kMiss);
}

TEST(Cache, MixedRrsetRejected) {
  Cache cache;
  EXPECT_THROW(
      cache.insert_positive(
          {dns::make_a(DnsName::must_parse("a.org"),
                       IpAddr::must_parse("192.0.2.1")),
           dns::make_a(DnsName::must_parse("b.org"),
                       IpAddr::must_parse("192.0.2.2"))},
          0),
      InvariantError);
}

TEST(Cache, NegativeNameHit) {
  Cache cache;
  cache.insert_nxdomain(DnsName::must_parse("gone.org"), 300, 0);
  EXPECT_EQ(cache.lookup(DnsName::must_parse("gone.org"), RrType::kA, 0).kind,
            CacheHitKind::kNegativeName);
  EXPECT_EQ(
      cache.lookup(DnsName::must_parse("gone.org"), RrType::kA, 301 * kSec)
          .kind,
      CacheHitKind::kMiss);
}

TEST(Cache, Rfc8020AncestorCoversDescendants) {
  Cache cache;  // rfc8020 on by default
  cache.insert_nxdomain(DnsName::must_parse("x1.dns-lab.org"), 300, 0);
  // This is the paper's §3.6.4 mechanism: the NXDOMAIN for the keyword label
  // suppresses every later experiment query through this resolver.
  EXPECT_EQ(cache
                .lookup(DnsName::must_parse("999.aa.bb.1.m0.x1.dns-lab.org"),
                        RrType::kA, 10 * kSec)
                .kind,
            CacheHitKind::kNegativeName);
  // Parents and siblings are not covered.
  EXPECT_EQ(cache.lookup(DnsName::must_parse("dns-lab.org"), RrType::kA, 0).kind,
            CacheHitKind::kMiss);
  EXPECT_EQ(
      cache.lookup(DnsName::must_parse("x2.dns-lab.org"), RrType::kA, 0).kind,
      CacheHitKind::kMiss);
}

TEST(Cache, Rfc8020CanBeDisabled) {
  dns::CacheConfig config;
  config.rfc8020 = false;
  Cache cache(config);
  cache.insert_nxdomain(DnsName::must_parse("x1.dns-lab.org"), 300, 0);
  EXPECT_EQ(cache
                .lookup(DnsName::must_parse("sub.x1.dns-lab.org"), RrType::kA,
                        0)
                .kind,
            CacheHitKind::kMiss);
  // The exact name still hits.
  EXPECT_EQ(
      cache.lookup(DnsName::must_parse("x1.dns-lab.org"), RrType::kA, 0).kind,
      CacheHitKind::kNegativeName);
}

TEST(Cache, NegativeTypeHit) {
  Cache cache;
  const auto name = DnsName::must_parse("a.org");
  cache.insert_nodata(name, RrType::kAaaa, 60, 0);
  EXPECT_EQ(cache.lookup(name, RrType::kAaaa, 0).kind,
            CacheHitKind::kNegativeType);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 0).kind, CacheHitKind::kMiss);
  EXPECT_EQ(cache.lookup(name, RrType::kAaaa, 61 * kSec).kind,
            CacheHitKind::kMiss);
}

TEST(Cache, MaxTtlClamp) {
  dns::CacheConfig config;
  config.max_ttl = 10;
  Cache cache(config);
  const auto name = DnsName::must_parse("a.org");
  cache.insert_positive(
      {dns::make_a(name, IpAddr::must_parse("192.0.2.1"), 100000)}, 0);
  EXPECT_EQ(cache.lookup(name, RrType::kA, 11 * kSec).kind,
            CacheHitKind::kMiss);
  cache.insert_nxdomain(DnsName::must_parse("n.org"), 100000, 0);
  EXPECT_EQ(cache.lookup(DnsName::must_parse("n.org"), RrType::kA, 11 * kSec)
                .kind,
            CacheHitKind::kMiss);
}

TEST(Cache, PurgeRemovesExpired) {
  Cache cache;
  cache.insert_positive({dns::make_a(DnsName::must_parse("a.org"),
                                     IpAddr::must_parse("192.0.2.1"), 10)},
                        0);
  cache.insert_nxdomain(DnsName::must_parse("b.org"), 10, 0);
  cache.insert_nodata(DnsName::must_parse("c.org"), RrType::kA, 1000, 0);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.purge(11 * kSec), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, EmptyRrsetIgnored) {
  Cache cache;
  cache.insert_positive({}, 0);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
