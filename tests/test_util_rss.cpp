// The /proc status-format parse behind peak_rss_kb()/current_rss_kb(),
// exercised on crafted snapshots so the bench's headline memory numbers are
// backed by a tested parse, not a hopeful one.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/rss.h"

namespace {

class StatusFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "cd_rss_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write(const char* name, const std::string& content) {
    const auto path = dir_ / name;
    std::ofstream(path) << content;
    return path.string();
  }

  std::filesystem::path dir_;
};

TEST_F(StatusFixture, ParsesTheNamedFieldOnly) {
  const std::string path = write("status",
                                 "Name:\tcampaign_scale\n"
                                 "VmPeak:\t  123456 kB\n"
                                 "VmHWM:\t   98765 kB\n"
                                 "VmRSS:\t   54321 kB\n"
                                 "Threads:\t8\n");
  EXPECT_EQ(cd::status_file_field_kb(path.c_str(), "VmHWM"), 98765u);
  EXPECT_EQ(cd::status_file_field_kb(path.c_str(), "VmRSS"), 54321u);
  EXPECT_EQ(cd::status_file_field_kb(path.c_str(), "VmPeak"), 123456u);
}

TEST_F(StatusFixture, FieldNameMustMatchExactlyUpToTheColon) {
  // "VmRSS" must not match the "VmRSSExtra:" line, and a prefix of a real
  // field ("Vm") must match nothing.
  const std::string path = write("status",
                                 "VmRSSExtra:\t  111 kB\n"
                                 "VmRSS:\t  222 kB\n");
  EXPECT_EQ(cd::status_file_field_kb(path.c_str(), "VmRSS"), 222u);
  EXPECT_EQ(cd::status_file_field_kb(path.c_str(), "Vm"), 0u);
}

TEST_F(StatusFixture, MissingFileAndAbsentFieldReadAsZero) {
  EXPECT_EQ(cd::status_file_field_kb((dir_ / "nope").string().c_str(),
                                     "VmHWM"),
            0u);
  const std::string path = write("status", "Name:\tx\nThreads:\t1\n");
  EXPECT_EQ(cd::status_file_field_kb(path.c_str(), "VmHWM"), 0u);
}

TEST_F(StatusFixture, MalformedValueReadsAsZero) {
  const std::string path = write("status", "VmHWM:\tgarbage kB\n");
  EXPECT_EQ(cd::status_file_field_kb(path.c_str(), "VmHWM"), 0u);
}

TEST(Rss, LiveCountersAreSaneOnLinux) {
  // On any Linux this process has real /proc entries; peak >= current > 0.
  // Elsewhere both read 0 and the bench reports honest zeros.
  const std::size_t peak = cd::peak_rss_kb();
  const std::size_t current = cd::current_rss_kb();
  if (std::filesystem::exists("/proc/self/status")) {
    EXPECT_GT(current, 0u);
    EXPECT_GE(peak, current * 9 / 10);  // HWM sampled earlier can lag a touch
  } else {
    EXPECT_EQ(peak, 0u);
    EXPECT_EQ(current, 0u);
  }
}

}  // namespace
