// The event-core equivalence guarantee: the hierarchical timing wheel
// (sim::EventEngine::kWheel, the default) must be observably identical to
// the retired priority-queue implementation it replaced, which is kept in
// the tree as a reference oracle.
//
// Three layers of evidence:
//  1. A property test interprets randomized schedule/cancel/batch/run
//     programs (with nested scheduling and cancellation from inside
//     callbacks) against both engines and demands the exact same execution
//     trace — tags, firing times, clock trajectory. Failures greedily
//     delta-debug themselves down to a minimal reproducing program.
//  2. Targeted regressions for the wheel's hard edges: same-tick FIFO across
//     cascade levels, far-future times spanning every wheel level,
//     schedule_in overflow saturation, cancel of already-fired ids.
//  3. Whole campaigns: the quickstart battery must produce byte-identical
//     results_digest, capture_digest and pcap bytes under either engine
//     (seeds x shard counts), and the golden fixture must re-verify under
//     the oracle engine too.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "ditl/world.h"
#include "sim/event_loop.h"
#include "util/error.h"
#include "util/pcap.h"
#include "util/rng.h"

namespace {

using namespace cd;
using sim::EventEngine;
using sim::EventLoop;
using sim::SimTime;

// --- randomized differential interpreter -------------------------------------

struct Op {
  enum Kind : std::uint8_t {
    kScheduleAt,
    kScheduleIn,
    kScheduleBatched,
    kCancel,
    kRunUntil,
    kRun,
  };
  Kind kind = kScheduleAt;
  SimTime t = 0;           // absolute time / delay / run_until bound
  std::uint64_t key = 0;   // batch key
  std::size_t ref = 0;     // cancel: index into the ids issued so far
  std::uint32_t tag = 0;   // trace identity; also drives nested behavior
};

const char* kind_name(Op::Kind k) {
  switch (k) {
    case Op::kScheduleAt: return "schedule_at";
    case Op::kScheduleIn: return "schedule_in";
    case Op::kScheduleBatched: return "schedule_batched";
    case Op::kCancel: return "cancel";
    case Op::kRunUntil: return "run_until";
    case Op::kRun: return "run";
  }
  return "?";
}

/// One trace entry per executed callback (tag + firing time); run/run_until
/// ops append a sentinel entry carrying the post-run clock, pinning the
/// run_until clock-advance rule as well.
struct Trace {
  std::vector<std::pair<std::uint32_t, SimTime>> entries;
  std::uint64_t executed = 0;
  std::size_t final_pending = 0;
  SimTime final_now = 0;

  friend bool operator==(const Trace&, const Trace&) = default;
};

constexpr std::uint32_t kRunMarker = 0xFFFFFFFF;
constexpr std::uint32_t kNestedBit = 0x80000000;

/// Interprets `ops` on a fresh loop of the given engine. Callbacks with
/// certain tags re-enter the loop (schedule a nested event, or cancel an
/// earlier id) — behavior derived from the tag alone, so both engines see
/// the same nested program iff their execution orders match.
Trace interpret(EventEngine engine, const std::vector<Op>& ops) {
  EventLoop loop(engine);
  Trace trace;
  std::vector<sim::EventId> ids;

  struct Ctx {
    EventLoop& loop;
    Trace& trace;
    std::vector<sim::EventId>& ids;
  } ctx{loop, trace, ids};

  // Shared callback body (value-captured ctx pointer: 16 bytes, inline in
  // SmallFn). Declared as a struct so it can recurse via schedule.
  struct Fire {
    static void run(Ctx* c, std::uint32_t tag) {
      c->trace.entries.emplace_back(tag, c->loop.now());
      if ((tag & kNestedBit) == 0) {
        if (tag % 7 == 3) {
          const std::uint32_t nested = tag | kNestedBit;
          const auto delay = static_cast<SimTime>(tag % 50);
          c->ids.push_back(c->loop.schedule_in(
              delay, [c, nested] { Fire::run(c, nested); }));
        }
        if (tag % 11 == 5 && !c->ids.empty()) {
          c->loop.cancel(c->ids[tag % c->ids.size()]);
        }
      }
    }
  };

  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kScheduleAt: {
        const std::uint32_t tag = op.tag;
        ids.push_back(
            loop.schedule_at(op.t, [&ctx, tag] { Fire::run(&ctx, tag); }));
        break;
      }
      case Op::kScheduleIn: {
        const std::uint32_t tag = op.tag;
        ids.push_back(
            loop.schedule_in(op.t, [&ctx, tag] { Fire::run(&ctx, tag); }));
        break;
      }
      case Op::kScheduleBatched: {
        const std::uint32_t tag = op.tag;
        ids.push_back(loop.schedule_batched(
            op.t, op.key, [&ctx, tag] { Fire::run(&ctx, tag); }));
        break;
      }
      case Op::kCancel:
        if (!ids.empty()) loop.cancel(ids[op.ref % ids.size()]);
        break;
      case Op::kRunUntil:
        loop.run_until(op.t, 1'000'000);
        trace.entries.emplace_back(kRunMarker, loop.now());
        break;
      case Op::kRun:
        loop.run(1'000'000);
        trace.entries.emplace_back(kRunMarker, loop.now());
        break;
    }
  }
  loop.run(1'000'000);  // drain everything, however far in the future
  trace.executed = loop.executed();
  trace.final_pending = loop.pending();
  trace.final_now = loop.now();
  return trace;
}

/// Times drawn across every wheel level — same-tick collisions, the level-0
/// rotation, mid-range cascades, and far-future instants near kSimTimeMax.
SimTime gen_time(Rng& rng) {
  switch (rng.uniform(8)) {
    case 0: return static_cast<SimTime>(rng.uniform(4));        // dense ties
    case 1: return static_cast<SimTime>(rng.uniform(256));      // level 0
    case 2: return static_cast<SimTime>(rng.uniform(1 << 16));  // level 1
    case 3: return static_cast<SimTime>(rng.uniform(1u << 24)); // level 2
    case 4: return static_cast<SimTime>(rng.uniform(1ull << 40));
    case 5: return static_cast<SimTime>(rng.uniform(1ull << 56));
    case 6: return sim::kSimTimeMax - static_cast<SimTime>(rng.uniform(512));
    default: return static_cast<SimTime>(rng.uniform(100'000));
  }
}

std::vector<Op> gen_program(std::uint64_t seed, std::size_t n_ops) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) {
    Op op;
    op.tag = static_cast<std::uint32_t>(i) & ~kNestedBit;
    const std::uint64_t pick = rng.uniform(100);
    if (pick < 30) {
      op.kind = Op::kScheduleAt;
      op.t = gen_time(rng);
    } else if (pick < 45) {
      op.kind = Op::kScheduleIn;
      // Includes schedule_in(0) and sentinel-huge delays that must saturate.
      op.t = rng.uniform(10) == 0 ? 0 : gen_time(rng);
      if (rng.uniform(50) == 0) op.t = INT64_MAX - 1;
    } else if (pick < 75) {
      op.kind = Op::kScheduleBatched;
      op.t = gen_time(rng);
      op.key = rng.uniform(4);
    } else if (pick < 85) {
      op.kind = Op::kCancel;  // may hit pending OR already-fired ids
      op.ref = rng.uniform(1u << 16);
    } else if (pick < 97) {
      op.kind = Op::kRunUntil;
      op.t = gen_time(rng);
    } else {
      op.kind = Op::kRun;
    }
    ops.push_back(op);
  }
  return ops;
}

bool diverges(const std::vector<Op>& ops) {
  return !(interpret(EventEngine::kWheel, ops) ==
           interpret(EventEngine::kPriorityQueue, ops));
}

/// Greedy delta-debugging: repeatedly drop chunks (halving the chunk size)
/// while the program still diverges. Cancel ops index ids positionally, so
/// any subsequence is still a valid program.
std::vector<Op> shrink(std::vector<Op> ops) {
  for (std::size_t chunk = ops.size() / 2; chunk >= 1; chunk /= 2) {
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (std::size_t start = 0; start + chunk <= ops.size();) {
        std::vector<Op> candidate;
        candidate.reserve(ops.size() - chunk);
        candidate.insert(candidate.end(), ops.begin(),
                         ops.begin() + static_cast<std::ptrdiff_t>(start));
        candidate.insert(
            candidate.end(),
            ops.begin() + static_cast<std::ptrdiff_t>(start + chunk),
            ops.end());
        if (diverges(candidate)) {
          ops = std::move(candidate);
          removed_any = true;
        } else {
          start += chunk;
        }
      }
    }
  }
  return ops;
}

std::string format_program(const std::vector<Op>& ops) {
  std::ostringstream out;
  for (const Op& op : ops) {
    out << "  " << kind_name(op.kind) << " t=" << op.t << " key=" << op.key
        << " ref=" << op.ref << " tag=" << op.tag << "\n";
  }
  return out.str();
}

TEST(EventCoreProperty, RandomProgramsMatchOracleExactly) {
  // ~6 x 2500 ops x ~75% schedule ops (plus nested schedules) comfortably
  // exceeds 10k differentially-checked events.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 99ull, 1337ull, 2020ull}) {
    std::vector<Op> ops = gen_program(seed, 2500);
    if (diverges(ops)) {
      const std::vector<Op> minimal = shrink(std::move(ops));
      FAIL() << "wheel diverges from oracle; seed=" << seed
             << "; minimal program (" << minimal.size() << " ops):\n"
             << format_program(minimal);
    }
  }
}

TEST(EventCoreProperty, CancelHeavyProgramsMatchOracleExactly) {
  // A second distribution: mostly cancels and run_until, catching clock
  // advancement through cancelled-only stretches of the wheel.
  for (const std::uint64_t seed : {3ull, 5ull, 11ull}) {
    Rng rng(seed);
    std::vector<Op> ops;
    for (std::size_t i = 0; i < 1500; ++i) {
      Op op;
      op.tag = static_cast<std::uint32_t>(i) & ~kNestedBit;
      const std::uint64_t pick = rng.uniform(10);
      if (pick < 3) {
        op.kind = Op::kScheduleAt;
        op.t = gen_time(rng);
      } else if (pick < 7) {
        op.kind = Op::kCancel;
        op.ref = rng.uniform(1u << 16);
      } else {
        op.kind = Op::kRunUntil;
        op.t = gen_time(rng);
      }
      ops.push_back(op);
    }
    if (diverges(ops)) {
      const std::vector<Op> minimal = shrink(std::move(ops));
      FAIL() << "wheel diverges from oracle; seed=" << seed
             << "; minimal program (" << minimal.size() << " ops):\n"
             << format_program(minimal);
    }
  }
}

// --- targeted wheel edges -----------------------------------------------------

TEST(EventCore, SameTickFifoAcrossCascadeLevels) {
  // Ten events for one far-future tick, scheduled from progressively closer
  // times so they enter the wheel at DIFFERENT levels and only meet in the
  // level-0 slot after cascading. FIFO must still hold.
  for (const EventEngine engine :
       {EventEngine::kWheel, EventEngine::kPriorityQueue}) {
    EventLoop loop(engine);
    constexpr SimTime target = (SimTime{3} << 40) + 123;
    std::vector<int> order;
    int next = 0;
    // Every 2^36 ticks, schedule one more callback for `target`.
    std::function<void()> step = [&] {
      loop.schedule_at(target, [&order, i = next] { order.push_back(i); });
      ++next;
      if (next < 10) loop.schedule_in(SimTime{1} << 36, step);
    };
    loop.schedule_at(0, step);
    loop.run();
    ASSERT_EQ(order.size(), 10u) << "engine=" << static_cast<int>(engine);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(order[static_cast<std::size_t>(i)], i)
          << "engine=" << static_cast<int>(engine);
    }
    EXPECT_EQ(loop.now(), target);
  }
}

TEST(EventCore, FarFutureTimesSpanEveryLevel) {
  for (const EventEngine engine :
       {EventEngine::kWheel, EventEngine::kPriorityQueue}) {
    EventLoop loop(engine);
    std::vector<SimTime> fired;
    // One event per wheel level: delta = 2^(8k) + k.
    for (int k = 0; k < 8; ++k) {
      const SimTime at = (SimTime{1} << (8 * k)) + k;
      loop.schedule_at(at, [&fired, &loop] { fired.push_back(loop.now()); });
    }
    loop.run();
    ASSERT_EQ(fired.size(), 8u);
    for (int k = 0; k < 8; ++k) {
      EXPECT_EQ(fired[static_cast<std::size_t>(k)],
                (SimTime{1} << (8 * k)) + k)
          << "engine=" << static_cast<int>(engine);
    }
  }
}

TEST(EventCore, ScheduleInSaturatesInsteadOfWrapping) {
  // Regression: now_ + delay used to wrap negative for sentinel-large
  // delays, firing the "far future" event immediately.
  for (const EventEngine engine :
       {EventEngine::kWheel, EventEngine::kPriorityQueue}) {
    EventLoop loop(engine);
    bool far_ran = false;
    bool near_ran = false;
    loop.schedule_at(100, [&] {
      loop.schedule_in(INT64_MAX, [&] { far_ran = true; });
      loop.schedule_in(INT64_MAX - 50, [&] { far_ran = true; });
    });
    loop.schedule_at(200, [&] { near_ran = true; });
    loop.run_until(1'000'000);
    EXPECT_TRUE(near_ran) << "engine=" << static_cast<int>(engine);
    EXPECT_FALSE(far_ran) << "engine=" << static_cast<int>(engine);
    EXPECT_EQ(loop.pending(), 2u);
    loop.run();
    EXPECT_TRUE(far_ran);
    EXPECT_EQ(loop.now(), sim::kSimTimeMax);
  }
}

TEST(EventCore, ScheduleAtClampsToSimTimeMax) {
  for (const EventEngine engine :
       {EventEngine::kWheel, EventEngine::kPriorityQueue}) {
    EventLoop loop(engine);
    SimTime fired_at = -1;
    loop.schedule_at(INT64_MAX, [&] { fired_at = loop.now(); });
    loop.run();
    EXPECT_EQ(fired_at, sim::kSimTimeMax)
        << "engine=" << static_cast<int>(engine);
  }
}

TEST(EventCore, CancelOfRecycledIdIsInert) {
  // After an event fires, its id must never alias a later event — even
  // though the wheel recycles the underlying node immediately.
  EventLoop loop(EventEngine::kWheel);
  const auto stale = loop.schedule_at(1, [] {});
  loop.run();
  bool ran = false;
  loop.schedule_at(2, [&] { ran = true; });  // likely reuses the node
  loop.cancel(stale);                        // must NOT cancel the new event
  loop.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.executed(), 2u);
}

TEST(EventCore, RunUntilNeverRunsPastBoundOverCancelledHead) {
  // Regression for a defect in the retired engine (fixed in the oracle
  // port): with a cancelled tombstone at the head of the queue, run_until
  // tested the bound against the tombstone and then executed the next real
  // event however far past `until` it lay. Both engines must stop at the
  // bound and only discard the husk.
  for (const auto engine : {EventEngine::kWheel, EventEngine::kPriorityQueue}) {
    EventLoop loop(engine);
    const auto head = loop.schedule_in(161, [] {});
    loop.cancel(head);
    bool far_ran = false;
    loop.schedule_batched(SimTime{1} << 52, 2, [&] { far_ran = true; });
    loop.run_until(61'333);
    EXPECT_FALSE(far_ran);
    EXPECT_EQ(loop.now(), 61'333);
    EXPECT_EQ(loop.pending(), 1u);
    loop.run();
    EXPECT_TRUE(far_ran);
  }
}

TEST(EventCore, SetEngineRequiresIdleLoop) {
  EventLoop loop;
  loop.schedule_at(5, [] {});
  EXPECT_THROW(loop.set_engine(EventEngine::kPriorityQueue), InvariantError);
  loop.run();
  loop.set_engine(EventEngine::kPriorityQueue);
  EXPECT_EQ(loop.engine(), EventEngine::kPriorityQueue);
}

// --- whole-campaign differential ---------------------------------------------

using cd::core::CaptureSpec;
using cd::core::ExperimentConfig;
using cd::core::ShardedResults;
using cd::core::capture_digest;
using cd::core::results_digest;
using cd::core::run_sharded_experiment;

cd::ditl::WorldSpec spec_for(std::uint64_t seed) {
  cd::ditl::WorldSpec spec = cd::ditl::small_world_spec();
  spec.seed = seed;
  return spec;
}

ExperimentConfig campaign_config(bool wheel, std::size_t shards) {
  ExperimentConfig config;
  config.wheel_event_core = wheel;
  config.num_shards = shards;
  config.num_threads = shards > 1 ? 2 : 1;
  config.analyst = cd::scanner::AnalystConfig{};
  CaptureSpec capture;
  capture.include_drops = true;
  config.capture = capture;
  return config;
}

TEST(EventCoreCampaign, DigestsMatchOracleAcrossSeedsAndShards) {
  // The full 5-seed battery lives in test_sim_batched/test_sim_tcp's
  // engine axes; this covers both shard counts under the capture-everything
  // config (and is the body TSan re-runs via the eventcore label).
  for (const std::uint64_t seed : {7ull, 42ull}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      const ShardedResults wheel = run_sharded_experiment(
          spec_for(seed), campaign_config(true, shards));
      const ShardedResults oracle = run_sharded_experiment(
          spec_for(seed), campaign_config(false, shards));

      ASSERT_GT(wheel.merged.records.size(), 0u)
          << "seed=" << seed << ": campaign saw no targets";
      EXPECT_EQ(results_digest(wheel.merged), results_digest(oracle.merged))
          << "seed=" << seed << " shards=" << shards;
      ASSERT_FALSE(wheel.merged.capture.records.empty());
      EXPECT_EQ(capture_digest(wheel.merged.capture),
                capture_digest(oracle.merged.capture))
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(wheel.merged.capture.to_pcap(),
                oracle.merged.capture.to_pcap())
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(wheel.merged.capture.to_index(),
                oracle.merged.capture.to_index())
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(wheel.merged.queries_sent, oracle.merged.queries_sent);
      EXPECT_EQ(wheel.merged.followup_batteries,
                oracle.merged.followup_batteries);
      EXPECT_EQ(wheel.merged.analyst_replays, oracle.merged.analyst_replays);
      EXPECT_EQ(wheel.merged.network_stats.delivered,
                oracle.merged.network_stats.delivered);
    }
  }
}

std::string fixture_path(const char* name) {
  return std::string(CD_FIXTURE_DIR) + "/" + name;
}

TEST(EventCoreGoldenPcap, FixtureBytesIdenticalUnderOracleEngine) {
  // The checked-in golden capture predates the wheel (generated by the
  // priority-queue engine); both engines must still reproduce it exactly.
  if (std::getenv("CD_GOLDEN_WRITE") != nullptr) {
    GTEST_SKIP() << "fixture being regenerated";
  }
  const auto golden_pcap = cd::pcap::read_file(fixture_path("quickstart.pcap"));
  const auto golden_index =
      cd::pcap::read_file(fixture_path("quickstart.pcap.idx"));

  for (const bool wheel : {true, false}) {
    cd::ditl::WorldSpec spec = cd::ditl::small_world_spec();
    spec.n_asns = 6;
    spec.seed = 42;
    ExperimentConfig config;
    config.wheel_event_core = wheel;
    CaptureSpec capture;
    capture.include_drops = true;
    config.capture = capture;
    const cd::pcap::Capture got =
        run_sharded_experiment(spec, config).merged.capture;
    ASSERT_FALSE(got.records.empty());
    EXPECT_EQ(got.to_pcap(), golden_pcap) << "wheel=" << wheel;
    EXPECT_EQ(got.to_index(), golden_index) << "wheel=" << wheel;
  }
}

}  // namespace
